"""The persistent content-addressed result store (:mod:`repro.store`).

Covers the on-disk format and its failure modes (torn tails, interior
corruption, manifest drift), multi-writer convergence, gc/compaction,
cross-process fingerprint stability, the block-cache second tier, and
the legacy ``cachestore`` shim that routes store paths here.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.arch.base import BlockResult
from repro.arch.config import FP32, UniSTCConfig
from repro.arch.counters import ACTIONS, Counters
from repro.arch.tasks import UtilHistogram
from repro.arch.unistc import UniSTC
from repro.errors import DataCorruptionError, FormatError
from repro.formats.bbc import BBCMatrix
from repro.sim import cachestore, engine
from repro.sim.blockcache import BlockCache
from repro.sim.engine import simulate_kernel
from repro.store import (
    MANIFEST_NAME,
    ResultStore,
    STORE_SCHEMA,
    encode_record,
    key_digest,
)
from repro.workloads.synthetic import banded

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _key(i: int, ns: str = "ns"):
    return (ns, bytes([i]) * 4, bytes([i % 251, i % 7]))


def _result(i: int) -> BlockResult:
    hist = UtilHistogram(bins=np.array([i, 0, 2 * i, 1], dtype=np.int64))
    return BlockResult(cycles=i, products=2 * i, util_hist=hist,
                       counters=Counters({"mac_ops": float(3 * i)}))


def _segments(store: ResultStore):
    return sorted(store.segment_dir.glob("*.seg"))


@pytest.fixture(autouse=True)
def fresh_engine_cache():
    engine.clear_cache()
    engine.unbind_store()
    yield
    engine.clear_cache()
    engine.unbind_store()


@pytest.fixture()
def root(tmp_path):
    return tmp_path / "blockstore"


class TestFormat:
    def test_insert_lookup_roundtrip(self, root):
        with ResultStore(root) as store:
            assert store.lookup(_key(1)) is None
            assert store.insert(_key(1), _result(1)) is True
            got = store.lookup(_key(1))
        assert got.cycles == 1 and got.products == 2
        assert [int(b) for b in got.util_hist.bins] == [1, 0, 2, 1]
        assert got.counters.get("mac_ops") == 3.0
        assert got.counters.get(ACTIONS[-1]) == 0.0

    def test_persists_across_reopen(self, root):
        with ResultStore(root) as store:
            for i in range(1, 6):
                store.insert(_key(i), _result(i))
            store.flush()
        with ResultStore(root) as store:
            assert len(store) == 5
            assert store.lookup(_key(3)).cycles == 3

    def test_duplicate_insert_is_dropped(self, root):
        with ResultStore(root) as store:
            assert store.insert(_key(1), _result(1)) is True
            assert store.insert(_key(1), _result(1)) is False
            assert len(store) == 1
            assert store.stats.appends == 1
            assert store.stats.duplicates == 1

    def test_stats_traffic_accounting(self, root):
        with ResultStore(root) as store:
            store.insert(_key(1), _result(1))
            store.lookup(_key(1))
            store.lookup(_key(2))
            stats = store.stats
            assert (stats.hits, stats.misses, stats.lookups) == (1, 1, 2)
            assert stats.hit_rate == pytest.approx(0.5)
            assert stats.served_bytes > 0
            d = stats.as_dict()
            assert d["hits"] == 1 and d["misses"] == 1

    def test_describe_is_json_ready(self, root):
        import json

        with ResultStore(root) as store:
            store.insert(_key(1), _result(1))
            store.flush()
            doc = store.describe()
        assert doc["kind"] == "repro.store"
        assert doc["schema"] == STORE_SCHEMA
        assert doc["records"] == 1 and doc["segments"] == 1
        assert doc["bytes"] > 0
        json.dumps(doc)  # must not raise

    def test_refresh_sees_foreign_appends(self, root):
        writer = ResultStore(root)
        reader = ResultStore(root)
        try:
            writer.insert(_key(1), _result(1))
            writer.flush()
            assert reader.lookup(_key(1)) is None  # not yet scanned
            assert reader.refresh() == 1
            assert reader.lookup(_key(1)).cycles == 1
        finally:
            writer.close()
            reader.close()


class TestManifest:
    def test_missing_store_without_create_is_an_error(self, root):
        with pytest.raises(FormatError, match="no result store"):
            ResultStore(root, create=False)

    def test_schema_drift_is_rejected(self, root):
        import json

        ResultStore(root).close()
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["schema"] = STORE_SCHEMA + 99
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(FormatError, match="schema"):
            ResultStore(root)

    def test_actions_vocabulary_drift_is_rejected(self, root):
        import json

        ResultStore(root).close()
        manifest = json.loads((root / MANIFEST_NAME).read_text())
        manifest["actions"] = manifest["actions"][:-1]
        (root / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(FormatError, match="ACTIONS"):
            ResultStore(root)

    def test_foreign_manifest_kind_is_rejected(self, root):
        root.mkdir(parents=True)
        (root / MANIFEST_NAME).write_text('{"kind": "something-else"}')
        with pytest.raises(FormatError, match="not a repro.store"):
            ResultStore(root)


class TestCrashSemantics:
    def _store_with_torn_tail(self, root, records=3, torn=20):
        """A closed store whose single segment ends mid-record."""
        with ResultStore(root) as store:
            for i in range(1, records + 1):
                store.insert(_key(i), _result(i))
            store.flush()
            (seg,) = _segments(store)
        clean = seg.stat().st_size
        extra = encode_record(_key(99), _result(99))[:torn]
        with open(seg, "ab") as fh:
            fh.write(extra)
        return seg, clean

    def test_torn_tail_tolerated_without_repair(self, root):
        seg, clean = self._store_with_torn_tail(root)
        with ResultStore(root) as store:
            assert len(store) == 3
            assert store.lookup(_key(2)).cycles == 2
        # A live reader must not touch a foreign segment: the tail may
        # be another writer's append in progress.
        assert seg.stat().st_size == clean + 20

    def test_torn_tail_truncated_with_repair(self, root):
        seg, clean = self._store_with_torn_tail(root)
        with ResultStore(root, repair=True) as store:
            assert len(store) == 3
        assert seg.stat().st_size == clean

    def test_torn_payload_tolerated_too(self, root):
        # Tail cut inside the payload (prefix complete): still a torn
        # append, not interior corruption.
        seg, clean = self._store_with_torn_tail(root, torn=60)
        with ResultStore(root) as store:
            assert len(store) == 3
            assert store.stats.quarantined == 0

    def test_shrunk_segment_rescans_without_zero_extension(self, root):
        # A foreign gc/quarantine may *shrink* a segment a reader has
        # already scanned.  The resume offset must clamp to the new
        # EOF: a repair-mode truncate at the stale offset would
        # zero-extend the file, manufacturing framing garbage that the
        # next scan quarantines.
        with ResultStore(root) as writer:
            for i in range(1, 5):
                writer.insert(_key(i), _result(i))
            writer.flush()
            (seg,) = _segments(writer)
            full = seg.stat().st_size

            reader = ResultStore(root, repair=True)
            assert len(reader) == 4
            shrunk = full // 2
            seg.write_bytes(seg.read_bytes()[:shrunk])
            assert reader.refresh() == 0
            # No zero-extension past the new EOF, and no quarantine.
            assert seg.stat().st_size <= shrunk
            assert reader.stats.quarantined == 0
            # Stale beyond-EOF index entries degrade to misses, and
            # the segment is rescanned once it grows again.
            assert reader.lookup(_key(4)) is None
            writer.insert(_key(9), _result(9))
            writer.flush()
            assert reader.refresh() >= 1
            assert reader.lookup(_key(9)).cycles == 9
            reader.close()

    def test_interior_corruption_quarantines_segment(self, root):
        with ResultStore(root) as store:
            for i in range(1, 4):
                store.insert(_key(i), _result(i))
            store.flush()
            (seg,) = _segments(store)
        data = bytearray(seg.read_bytes())
        data[60] ^= 0xFF  # flip one payload byte of the first record
        seg.write_bytes(bytes(data))
        with ResultStore(root) as store:
            assert len(store) == 0  # whole segment dropped from index
            assert store.stats.quarantined == 1
            assert not _segments(store)
            quarantined = list(store.segment_dir.glob("*.quarantined*"))
            assert len(quarantined) == 1
            # The store stays writable after quarantine.
            assert store.insert(_key(7), _result(7)) is True
            assert store.lookup(_key(7)).cycles == 7

    def test_bad_magic_quarantines_segment(self, root):
        with ResultStore(root) as store:
            store.insert(_key(1), _result(1))
            store.flush()
            (seg,) = _segments(store)
        data = bytearray(seg.read_bytes())
        data[0:4] = b"JUNK"
        seg.write_bytes(bytes(data))
        with ResultStore(root) as store:
            assert len(store) == 0
            assert store.stats.quarantined == 1

    def test_verify_clean_and_corrupt(self, root):
        with ResultStore(root) as store:
            for i in range(1, 4):
                store.insert(_key(i), _result(i))
            store.flush()
            report = store.verify()
            assert report["records"] == 3 and report["errors"] == []
            (seg,) = _segments(store)
        # Corrupt a record *after* indexing: verify's CRC re-read (not
        # the open-time scan) must catch it.
        store = ResultStore(root)
        try:
            assert len(store) == 3
            data = bytearray(seg.read_bytes())
            data[-5] ^= 0xFF
            seg.write_bytes(bytes(data))
            report = store.verify()
            assert report["records"] < 3
            assert report["errors"]
            with pytest.raises(DataCorruptionError):
                store.verify(strict=True)
        finally:
            store.close()

    def test_concurrent_writers_converge(self, root):
        script = (
            "import sys\n"
            "from repro.store import ResultStore\n"
            "from repro.arch.base import BlockResult\n"
            "root, tag = sys.argv[1], int(sys.argv[2])\n"
            "with ResultStore(root) as store:\n"
            "    for i in range(40):\n"
            "        store.insert(('ns', b'\\x01\\x02', b'\\x03'),\n"
            "                     BlockResult(cycles=11, products=22))\n"
            "        store.insert(('w%d' % tag, bytes([i]), b'x'),\n"
            "                     BlockResult(cycles=i, products=i))\n"
            "    store.flush()\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(root), str(tag)],
                env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
            )
            for tag in (1, 2)
        ]
        for proc in procs:
            assert proc.wait(timeout=60) == 0
        with ResultStore(root) as store:
            # The racing key converged to exactly one readable record...
            got = store.lookup(("ns", b"\x01\x02", b"\x03"))
            assert got is not None and got.cycles == 11
            # ...and nothing either writer appended was lost.
            assert len(store) == 1 + 2 * 40
            assert store.verify()["errors"] == []


class TestThreadSafety:
    def test_one_handle_shared_across_threads(self, root):
        # ThreadingHTTPServer hands one store handle to many handler
        # threads; interleaved insert (shared writer offset) and
        # lookup (shared reader seek/read) must stay coherent.
        from concurrent.futures import ThreadPoolExecutor

        with ResultStore(root) as store:
            def work(i):
                for j in range(40):
                    key = _key(j % 251, ns=f"t{i}")
                    assert store.insert(key, _result(j % 100)) is True
                    got = store.lookup(key)
                    assert got is not None and got.cycles == j % 100

            with ThreadPoolExecutor(max_workers=8) as pool:
                list(pool.map(work, range(8)))
            assert len(store) == 8 * 40
            report = store.verify(strict=True)
            assert report["records"] == 8 * 40 and report["errors"] == []


class TestGC:
    def test_gc_compacts_to_one_segment(self, root):
        for generation in range(3):  # three writer sessions -> 3 segments
            with ResultStore(root) as store:
                for i in range(1, 5):
                    store.insert(_key(10 * generation + i),
                                 _result(10 * generation + i))
                store.flush()
        with ResultStore(root, repair=True) as store:
            assert store.segments == 3
            report = store.gc()
            assert report.kept == 12 and report.dropped == 0
            assert report.segments_removed == 3
            assert store.segments == 1
            assert len(store) == 12
            assert store.lookup(_key(21)).cycles == 21
        # The compacted store reopens clean.
        with ResultStore(root) as store:
            assert len(store) == 12
            assert store.verify()["errors"] == []

    def test_gc_budget_keeps_newest(self, root):
        with ResultStore(root) as store:
            for i in range(1, 11):
                store.insert(_key(i), _result(i))
            store.flush()
            per_record = store.bytes // 10
            report = store.gc(max_bytes=3 * per_record)
            assert report.kept == 3 and report.dropped == 7
            assert store.bytes <= 3 * per_record
            # Newest-append-first survival: the last three keys live on.
            for i in (8, 9, 10):
                assert store.lookup(_key(i)) is not None
            for i in (1, 2, 3):
                assert store.lookup(_key(i)) is None


class TestFingerprintStability:
    def test_digest_is_stable_across_processes(self, root):
        key = (UniSTC().cache_key(), b"\x01\x02\x03", b"\x04\x05")
        script = (
            "from repro.arch.unistc import UniSTC\n"
            "from repro.store import key_digest\n"
            "print(key_digest((UniSTC().cache_key(),\n"
            "                  b'\\x01\\x02\\x03', b'\\x04\\x05')).hex())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, timeout=60, check=True,
        )
        assert out.stdout.strip() == key_digest(key).hex()

    def test_every_knob_changes_the_key(self):
        baseline = UniSTC().cache_key()
        variants = [
            UniSTC(UniSTCConfig(precision=FP32)),
            UniSTC(UniSTCConfig(num_dpgs=4)),
            UniSTC(UniSTCConfig(adaptive_ordering=False)),
            UniSTC(UniSTCConfig(dynamic_gating=False)),
            UniSTC(UniSTCConfig(conflict_stall=False)),
            UniSTC(UniSTCConfig(dpg_wakeup_cycles=3)),
            UniSTC(UniSTCConfig(lookahead_cycles=2)),
            UniSTC(ordering="inner"),
            UniSTC(fill_order="n"),
        ]
        keys = [stc.cache_key() for stc in variants]
        assert baseline not in keys
        assert len(set(keys)) == len(keys)  # pairwise distinct too
        digests = {
            key_digest((ns, b"a", b"b")) for ns in keys + [baseline]
        }
        assert len(digests) == len(keys) + 1

    def test_identical_configs_share_a_namespace(self):
        assert UniSTC().cache_key() == UniSTC(UniSTCConfig()).cache_key()


class TestBlockCacheTier:
    def test_store_hit_promotes_into_lru(self, root):
        with ResultStore(root) as store:
            store.insert(_key(1), _result(1))
            cache = BlockCache(store=store)
            assert cache.lookup(_key(1)).cycles == 1
            assert (cache.stats.hits, cache.stats.store_hits) == (1, 1)
            # Promotion: the second lookup is pure LRU.
            assert cache.lookup(_key(1)).cycles == 1
            assert (cache.stats.hits, cache.stats.store_hits) == (2, 1)
            assert store.stats.hits == 1

    def test_store_miss_counts_once(self, root):
        with ResultStore(root) as store:
            cache = BlockCache(store=store)
            assert cache.lookup(_key(1)) is None
            assert (cache.stats.misses, cache.stats.store_misses) == (1, 1)

    def test_insert_writes_through(self, root):
        with ResultStore(root) as store:
            cache = BlockCache(store=store)
            cache.insert(_key(5), _result(5))
            assert store.lookup(_key(5)).cycles == 5

    def test_as_dict_keys_appear_only_with_store_traffic(self, root):
        cache = BlockCache()
        cache.insert(_key(1), _result(1))
        cache.lookup(_key(1))
        assert "store_hits" not in cache.stats.as_dict()
        with ResultStore(root) as store:
            tiered = BlockCache(store=store)
            tiered.lookup(_key(2))
            d = tiered.stats.as_dict()
            assert d["store_misses"] == 1 and d["store_hits"] == 0
            assert "store_hit_rate" in d

    def test_store_tier_context_manager(self, root):
        with ResultStore(root) as store:
            assert engine.bound_store() is None
            with engine.store_tier(store):
                assert engine.bound_store() is store
            assert engine.bound_store() is None

    def test_fresh_lru_replays_entirely_from_store(self, root):
        bbc = BBCMatrix.from_coo(banded(96, 10, 0.4, seed=3))
        with ResultStore(root) as store:
            cold = BlockCache(store=store)
            first = simulate_kernel("spmv", bbc, UniSTC(), cache=cold)
            assert cold.stats.inserts > 0
            store.flush()

            warm = BlockCache(store=store)  # a "new process": empty LRU
            second = simulate_kernel("spmv", bbc, UniSTC(), cache=warm)
            assert warm.stats.inserts == 0       # nothing re-simulated
            assert warm.stats.store_misses == 0  # every block served
            assert warm.stats.store_hits == cold.stats.inserts
        assert second.cycles == first.cycles
        assert second.products == first.products
        assert second.counters.as_dict() == first.counters.as_dict()


class TestCachestoreShim:
    def _warm_engine(self):
        bbc = BBCMatrix.from_coo(banded(96, 10, 0.4, seed=1))
        simulate_kernel("spmv", bbc, UniSTC())
        assert engine.cache_size() > 0

    def test_is_store_path(self, root, tmp_path):
        assert cachestore.is_store_path(root) is False  # nothing there yet
        ResultStore(root).close()
        assert cachestore.is_store_path(root) is True
        npz = tmp_path / "cache.npz"
        npz.write_bytes(b"")
        assert cachestore.is_store_path(npz) is False
        # An empty directory may become a store; a non-empty directory
        # without a manifest (a typo'd path, an output dir) must not be
        # silently initialised as one.
        empty = tmp_path / "empty"
        empty.mkdir()
        assert cachestore.is_store_path(empty) is True
        outputs = tmp_path / "outputs"
        outputs.mkdir()
        (outputs / "report.json").write_text("{}")
        assert cachestore.is_store_path(outputs) is False

    def test_save_cache_routes_to_store(self, root):
        # An existing store directory routes the save; a path yet to
        # be created is by contract a legacy .npz target (Session
        # creates the store before any save reaches the shim).
        ResultStore(root).close()
        self._warm_engine()
        written = cachestore.save_cache(root)
        assert written == engine.cache_size()
        with ResultStore(root) as store:
            assert len(store) == written
        # Re-saving writes nothing new: the return value counts
        # appended records, not the store's total.
        assert cachestore.save_cache(root) == 0

    def test_load_cache_or_cold_binds_store(self, root):
        ResultStore(root).close()
        self._warm_engine()
        entries = engine.cache_size()
        cachestore.save_cache(root)
        engine.clear_cache()
        assert engine.bound_store() is None
        assert cachestore.load_cache_or_cold(root) == entries
        assert engine.bound_store() is not None
        assert engine.bound_store().root == Path(root)

    def test_migrate_cache_from_legacy_npz(self, root, tmp_path):
        self._warm_engine()
        npz = tmp_path / "cache.npz"
        written = cachestore.save_cache(npz)
        engine.clear_cache()
        appended = cachestore.migrate_cache(npz, root)
        assert appended == written
        # Re-migration is a no-op: everything deduplicates.
        assert cachestore.migrate_cache(npz, root) == 0
        with ResultStore(root) as store:
            assert len(store) == written
            assert store.verify()["errors"] == []

    def test_resilient_runner_end_to_end(self, root):
        from repro.resilience.runner import ResilientRunner
        from repro.sim.sweep import Sweep

        ResultStore(root).close()  # an existing store routes the shim
        matrices = {"banded": banded(96, 10, 0.4, seed=2)}
        sweep = Sweep.from_names(matrices, ["uni-stc"], ["spmv"])
        first = ResilientRunner(sweep=sweep, cache_path=root).run()
        engine.clear_cache()
        engine.unbind_store()
        with ResultStore(root) as store:
            records = len(store)
        assert records > 0

        before = engine.cache_stats().snapshot()
        second = ResilientRunner(sweep=sweep, cache_path=root).run()
        delta = engine.cache_stats().delta(before)
        assert delta.store_hits == records  # replayed, not re-simulated
        assert delta.store_misses == 0
        r1 = first.results[0].report
        r2 = second.results[0].report
        assert (r1.cycles, r1.products) == (r2.cycles, r2.products)
        assert r1.counters.as_dict() == r2.counters.as_dict()

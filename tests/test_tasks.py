"""Tests for the task hierarchy dataclasses (Table III)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.tasks import T1Task, T3Task, T4Task, UtilHistogram


class TestT1Task:
    def test_from_bitmaps_roundtrip(self, rng):
        a = rng.random((16, 16)) < 0.3
        b = rng.random((16, 16)) < 0.3
        task = T1Task.from_bitmaps(a, b)
        assert np.array_equal(task.a_bitmap(), a)
        assert np.array_equal(task.b_bitmap(), b)

    def test_vector_operand(self, rng):
        b = rng.random((16, 1)) < 0.5
        task = T1Task.from_bitmaps(np.ones((16, 16), bool), b)
        assert task.n == 1
        assert np.array_equal(task.b_bitmap(), b)

    def test_rejects_bad_a_shape(self):
        with pytest.raises(ValueError):
            T1Task.from_bitmaps(np.ones((8, 16), bool), np.ones((16, 16), bool))

    def test_rejects_bad_b_width(self):
        with pytest.raises(ValueError):
            T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 4), bool))

    def test_intermediate_products_dense(self):
        task = T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))
        assert task.intermediate_products() == 4096  # Table VII maximum

    def test_intermediate_products_empty(self):
        task = T1Task.from_bitmaps(np.zeros((16, 16), bool), np.ones((16, 16), bool))
        assert task.intermediate_products() == 0

    @given(st.integers(0, 300))
    @settings(max_examples=20, deadline=None)
    def test_intermediate_products_formula(self, seed):
        gen = np.random.default_rng(seed)
        a = gen.random((16, 16)) < 0.3
        b = gen.random((16, 16)) < 0.3
        expected = int((a.sum(axis=0) * b.sum(axis=1)).sum())
        assert T1Task.from_bitmaps(a, b).intermediate_products() == expected

    def test_cache_key_depends_on_bitmaps_only(self, rng):
        a = rng.random((16, 16)) < 0.3
        b = rng.random((16, 16)) < 0.3
        t1 = T1Task.from_bitmaps(a, b, weight=1)
        t2 = T1Task.from_bitmaps(a, b, weight=7)
        assert t1.cache_key() == t2.cache_key()

    def test_weight_default(self):
        task = T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))
        assert task.weight == 1


class TestT3Task:
    def test_output_tile(self):
        task = T3Task(i=2, j=3, k=1, products=10)
        assert task.output_tile == (2, 3)

    def test_frozen(self):
        task = T3Task(i=0, j=0, k=0, products=1)
        with pytest.raises(AttributeError):
            task.products = 2


class TestT4Task:
    def test_code_packing(self):
        """The paper's Fig. 9 example: code '49' = target 4, pattern 0x9."""
        task = T4Task(target=4, pattern=0x9)
        assert task.code == 0x49
        assert task.length == 2

    def test_length_counts_pattern_bits(self):
        assert T4Task(target=0, pattern=0xF).length == 4
        assert T4Task(target=0, pattern=0x1).length == 1

    def test_rejects_wide_target(self):
        with pytest.raises(ValueError):
            T4Task(target=16, pattern=0x1)

    def test_rejects_wide_pattern(self):
        with pytest.raises(ValueError):
            T4Task(target=0, pattern=0x10)


class TestUtilHistogram:
    def test_bins_are_quartiles(self):
        hist = UtilHistogram()
        hist.record(0.1)   # (0, 25]
        hist.record(0.3)   # (25, 50]
        hist.record(0.6)   # (50, 75]
        hist.record(0.9)   # (75, 100]
        assert hist.bins.tolist() == [1, 1, 1, 1]

    def test_zero_goes_to_lowest_bin(self):
        hist = UtilHistogram()
        hist.record(0.0)
        assert hist.bins.tolist() == [1, 0, 0, 0]

    def test_boundaries(self):
        hist = UtilHistogram()
        hist.record(0.25)
        hist.record(0.5)
        hist.record(0.75)
        hist.record(1.0)
        assert hist.bins.tolist() == [1, 1, 1, 1]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            UtilHistogram().record(1.5)

    def test_weighted_record(self):
        hist = UtilHistogram()
        hist.record(0.9, weight=5)
        assert hist.cycles == 5

    def test_merge(self):
        h1, h2 = UtilHistogram(), UtilHistogram()
        h1.record(0.9)
        h2.record(0.1)
        h1.merge(h2, weight=3)
        assert h1.cycles == 4
        assert h1.bins[0] == 3

    def test_fractions_sum_to_one(self):
        hist = UtilHistogram()
        for u in (0.1, 0.4, 0.9, 0.95):
            hist.record(u)
        assert abs(hist.fractions().sum() - 1.0) < 1e-12

    def test_fractions_empty(self):
        assert UtilHistogram().fractions().tolist() == [0.0] * 4

    def test_low_util_fraction(self):
        hist = UtilHistogram()
        hist.record(0.2)
        hist.record(0.45)
        hist.record(0.9)
        assert abs(hist.low_util_fraction() - 2 / 3) < 1e-12

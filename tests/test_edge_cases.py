"""Edge cases across subsystems: degenerate matrices, extreme configs."""

import numpy as np
import pytest

from repro.arch.config import FP16, UniSTCConfig
from repro.arch.unistc import UniSTC
from repro.baselines import DsSTC, RmSTC
from repro.formats import BBCMatrix, COOMatrix
from repro.kernels import bbc_kernels
from repro.kernels.vector import SparseVector
from repro.sim.engine import simulate_kernel
from repro.sim.parallel import simulate_parallel


class TestDegenerateMatrices:
    def test_empty_matrix_all_kernels(self):
        empty = BBCMatrix.from_coo(COOMatrix((32, 32), [], [], []))
        for kernel in ("spmv", "spmm", "spgemm"):
            report = simulate_kernel(kernel, empty, UniSTC())
            assert report.cycles == 0
            assert report.t1_tasks == 0

    def test_single_element_matrix(self):
        one = BBCMatrix.from_coo(COOMatrix((1, 1), [0], [0], [2.0]))
        assert np.allclose(bbc_kernels.spmv(one, np.asarray([3.0])), [6.0])
        report = simulate_kernel("spgemm", one, UniSTC())
        assert report.products == 1

    def test_single_row_matrix(self):
        dense = np.zeros((1, 40))
        dense[0, ::3] = 1.0
        bbc = BBCMatrix.from_dense(dense)
        x = np.arange(40, dtype=np.float64)
        assert np.allclose(bbc_kernels.spmv(bbc, x), dense @ x)
        report = simulate_kernel("spmv", bbc, UniSTC())
        assert report.products == int((dense != 0).sum())

    def test_single_column_matrix(self):
        dense = np.zeros((40, 1))
        dense[::2, 0] = 1.0
        bbc = BBCMatrix.from_dense(dense)
        report = simulate_kernel("spmv", bbc, UniSTC())
        assert report.products == 20

    def test_diagonal_matrix_spgemm(self):
        diag = BBCMatrix.from_dense(np.diag(np.arange(1.0, 33.0)))
        result = bbc_kernels.spgemm(diag, diag)
        assert np.allclose(result.to_dense(), np.diag(np.arange(1.0, 33.0) ** 2))
        report = simulate_kernel("spgemm", diag, UniSTC())
        assert report.products == 32

    def test_fully_dense_matrix(self):
        dense = BBCMatrix.from_dense(np.ones((32, 32)))
        report = simulate_kernel("spgemm", dense, UniSTC())
        # 2x2 block grid: 8 block-pair tasks x 64 cycles each.
        assert report.cycles == 8 * 64
        assert report.mean_utilisation == pytest.approx(1.0)


class TestExtremeOperands:
    def test_spmspv_with_fully_dense_x(self, banded_bbc):
        x = SparseVector.from_dense(np.ones(banded_bbc.shape[1]))
        sparse_report = simulate_kernel("spmspv", banded_bbc, UniSTC(), x=x)
        dense_report = simulate_kernel("spmv", banded_bbc, UniSTC())
        assert sparse_report.cycles == dense_report.cycles

    def test_spmspv_single_entry_x(self, banded_bbc):
        x = SparseVector(banded_bbc.shape[1], [0], [1.0])
        report = simulate_kernel("spmspv", banded_bbc, UniSTC(), x=x)
        full = simulate_kernel("spmv", banded_bbc, UniSTC())
        assert report.cycles < full.cycles

    def test_spmm_single_column(self, banded_bbc):
        report = simulate_kernel("spmm", banded_bbc, UniSTC(), b_cols=1)
        spmv = simulate_kernel("spmv", banded_bbc, UniSTC())
        assert report.products == spmv.products

    def test_spmm_huge_width_weights(self, banded_bbc):
        report = simulate_kernel("spmm", banded_bbc, UniSTC(), b_cols=1024)
        small = simulate_kernel("spmm", banded_bbc, UniSTC(), b_cols=16)
        assert report.cycles == 64 * small.cycles


class TestExtremeConfigs:
    def test_one_dpg(self, banded_bbc):
        uni1 = UniSTC(UniSTCConfig(num_dpgs=1, tile_queue_depth=2))
        uni8 = UniSTC()
        r1 = simulate_kernel("spgemm", banded_bbc, uni1)
        r8 = simulate_kernel("spgemm", banded_bbc, uni8)
        assert r1.products == r8.products
        assert r1.cycles >= r8.cycles

    def test_fp16_conserves_products(self, banded_bbc):
        uni16 = UniSTC(UniSTCConfig(precision=FP16))
        uni64 = UniSTC()
        r16 = simulate_kernel("spgemm", banded_bbc, uni16)
        r64 = simulate_kernel("spgemm", banded_bbc, uni64)
        assert r16.products == r64.products
        assert r16.cycles <= r64.cycles

    def test_parallel_more_cores_than_rows(self, banded_bbc):
        par = simulate_parallel("spmv", banded_bbc, UniSTC,
                                n_cores=4 * banded_bbc.block_rows)
        serial = simulate_kernel("spmv", banded_bbc, UniSTC())
        assert par.total_cycles == serial.cycles

    def test_baselines_on_degenerate_vector_task(self):
        one = BBCMatrix.from_coo(COOMatrix((16, 16), [15], [15], [1.0]))
        for stc in (DsSTC(), RmSTC(), UniSTC()):
            report = simulate_kernel("spmv", one, stc)
            assert report.products == 1
            assert report.cycles >= 1

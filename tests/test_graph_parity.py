"""Graph-path vs legacy-loop parity: byte-identical per-layer reports.

The refactor contract: request 0 of the graph runner must call
``simulate_kernel`` with exactly the arguments the hand-rolled app
loops used, so every per-layer ``SimReport`` is byte-identical
(compared via the canonical ``report_digest``, which excludes only
host wall time and cache attribution).
"""

import pytest

from repro.apps.dnn import simulate_inference, simulate_inference_legacy
from repro.apps.gnn import simulate_propagation, simulate_propagation_legacy
from repro.arch.config import FP32, UniSTCConfig
from repro.arch.unistc import UniSTC
from repro.baselines import DsSTC, RmSTC
from repro.formats import CSRMatrix
from repro.perf.bench import report_digest
from repro.workloads.synthetic import random_uniform

STCS = {
    "uni-stc": lambda: UniSTC(UniSTCConfig(precision=FP32)),
    "ds-stc": lambda: DsSTC(FP32),
    "rm-stc": lambda: RmSTC(FP32),
}


@pytest.fixture(scope="module")
def adjacency():
    return CSRMatrix.from_coo(random_uniform(128, 128, 0.06, seed=9))


@pytest.mark.parametrize("stc_name", sorted(STCS))
@pytest.mark.parametrize("model,scale", [("resnet50", 0.05),
                                         ("transformer", 0.125)])
def test_dnn_graph_matches_legacy_loop(stc_name, model, scale):
    graph = simulate_inference(STCS[stc_name](), model, 0.70, scale=scale)
    legacy = simulate_inference_legacy(STCS[stc_name](), model, 0.70,
                                       scale=scale)
    assert [l.layer.name for l in graph.layers] \
        == [l.layer.name for l in legacy.layers]
    assert [report_digest(l.report) for l in graph.layers] \
        == [report_digest(l.report) for l in legacy.layers]
    assert graph.total_cycles == legacy.total_cycles
    assert graph.total_energy_pj == legacy.total_energy_pj


@pytest.mark.parametrize("stc_name", sorted(STCS))
def test_gnn_graph_matches_legacy_loop(stc_name, adjacency):
    report = simulate_propagation(STCS[stc_name](), adjacency,
                                  feature_dim=32, layers=2)
    legacy = simulate_propagation_legacy(STCS[stc_name](), adjacency,
                                         feature_dim=32, layers=2)
    nodes = report.per_layer(request=0)
    assert len(nodes) == len(legacy) == 3      # 2 propagations + two-hop
    assert [report_digest(n.report) for n in nodes] \
        == [report_digest(r) for r in legacy]


def test_dnn_parity_holds_under_batching():
    """Request 0 of a batched run is still the legacy run."""
    uni = UniSTC(UniSTCConfig(precision=FP32))
    batched = simulate_inference(uni, "resnet50", 0.70, scale=0.05, batch=3)
    legacy = simulate_inference_legacy(uni, "resnet50", 0.70, scale=0.05)
    assert [report_digest(l.report) for l in batched.layers] \
        == [report_digest(l.report) for l in legacy.layers]


def test_dnn_parity_tracks_the_seed():
    """A non-default seed reaches both paths identically."""
    uni = UniSTC(UniSTCConfig(precision=FP32))
    graph = simulate_inference(uni, "resnet50", 0.70, scale=0.05, seed=42)
    legacy = simulate_inference_legacy(uni, "resnet50", 0.70, scale=0.05,
                                       seed=42)
    assert [report_digest(l.report) for l in graph.layers] \
        == [report_digest(l.report) for l in legacy.layers]
    default = simulate_inference_legacy(uni, "resnet50", 0.70, scale=0.05)
    assert [report_digest(l.report) for l in graph.layers] \
        != [report_digest(l.report) for l in default.layers]

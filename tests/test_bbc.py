"""Tests for the BBC format — construction, decode, bitmaps, I/O, storage."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.formats import BBCMatrix, COOMatrix, CSRMatrix
from repro.formats.bbc import BLOCK, TILE, TILES_PER_BLOCK
from repro.formats.bitarray import popcount_array


class TestConstants:
    def test_block_and_tile(self):
        assert BLOCK == 16
        assert TILE == 4
        assert TILES_PER_BLOCK == 16


class TestConstruction:
    def test_empty_matrix(self):
        m = BBCMatrix.from_coo(COOMatrix((10, 10), [], [], []))
        assert m.nnz == 0
        assert m.nblocks == 0
        assert m.to_dense().shape == (10, 10)

    def test_single_element(self):
        m = BBCMatrix.from_coo(COOMatrix((20, 20), [17], [3], [5.0]))
        assert m.nblocks == 1
        assert m.ntiles == 1
        assert m.to_dense()[17, 3] == 5.0

    def test_roundtrip(self, small_coo):
        assert np.allclose(BBCMatrix.from_coo(small_coo).to_dense(), small_coo.to_dense())

    def test_from_csr(self, small_csr):
        assert np.allclose(BBCMatrix.from_csr(small_csr).to_dense(), small_csr.to_dense())

    def test_from_dense(self, small_dense):
        assert np.allclose(BBCMatrix.from_dense(small_dense).to_dense(), small_dense)

    def test_to_csr(self, small_csr):
        assert BBCMatrix.from_csr(small_csr).to_csr() == small_csr

    @given(st.integers(1, 50), st.integers(1, 50), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random(self, m, n, seed):
        rng = np.random.default_rng(seed)
        dense = rng.random((m, n)) * (rng.random((m, n)) < 0.25)
        assert np.allclose(BBCMatrix.from_dense(dense).to_dense(), dense)

    def test_dense_16x16_is_one_full_block(self):
        m = BBCMatrix.from_dense(np.ones((16, 16)))
        assert m.nblocks == 1
        assert m.ntiles == 16
        assert int(m.bitmap_lv1[0]) == 0xFFFF
        assert all(int(b) == 0xFFFF for b in m.bitmap_lv2)


class TestStructuralInvariants:
    def test_lv1_popcount_equals_tile_count(self, small_bbc):
        assert int(popcount_array(small_bbc.bitmap_lv1).sum()) == small_bbc.ntiles

    def test_lv2_popcount_equals_nnz(self, small_bbc):
        assert int(popcount_array(small_bbc.bitmap_lv2).sum()) == small_bbc.nnz

    def test_val_ptr_lv1_monotone(self, small_bbc):
        assert np.all(np.diff(small_bbc.val_ptr_lv1) >= 0)

    def test_val_ptr_lv2_offsets_consistent(self, small_bbc):
        """Each tile's offset equals the popcount prefix of earlier tiles."""
        for blk in range(small_bbc.nblocks):
            lo, hi = small_bbc.tile_ptr[blk], small_bbc.tile_ptr[blk + 1]
            running = 0
            for t in range(lo, hi):
                assert int(small_bbc.val_ptr_lv2[t]) == running
                running += int(popcount_array(small_bbc.bitmap_lv2[t : t + 1])[0])

    def test_block_cols_sorted_within_rows(self, small_bbc):
        for brow in range(small_bbc.block_rows):
            cols, _ = small_bbc.block_row(brow)
            assert np.all(np.diff(cols) > 0)

    def test_nnz_per_block_sums_to_nnz(self, small_bbc):
        assert int(small_bbc.nnz_per_block().sum()) == small_bbc.nnz

    def test_validation_rejects_bad_lv1(self, small_bbc):
        if small_bbc.nblocks == 0:
            pytest.skip("needs at least one block")
        bad = small_bbc.bitmap_lv1.copy()
        bad[0] = 0
        with pytest.raises(FormatError):
            BBCMatrix(
                small_bbc.shape, small_bbc.row_ptr, small_bbc.col_idx, bad,
                small_bbc.tile_ptr, small_bbc.bitmap_lv2, small_bbc.val_ptr_lv1,
                small_bbc.val_ptr_lv2, small_bbc.values,
            )


class TestBlockAccess:
    def test_find_block(self, small_bbc):
        for brow, bcol, idx in small_bbc.iter_blocks():
            assert small_bbc.find_block(brow, bcol) == idx

    def test_find_missing_block(self):
        m = BBCMatrix.from_coo(COOMatrix((32, 32), [0], [0], [1.0]))
        assert m.find_block(1, 1) is None

    def test_block_bitmap_matches_dense(self, small_bbc):
        for _, _, idx in small_bbc.iter_blocks():
            assert np.array_equal(
                small_bbc.block_bitmap(idx), small_bbc.block_dense(idx) != 0
            )

    def test_block_bitmaps_all_matches_scalar(self, small_bbc):
        grids = small_bbc.block_bitmaps_all()
        for _, _, idx in small_bbc.iter_blocks():
            assert np.array_equal(grids[idx], small_bbc.block_bitmap(idx))

    def test_tile_bitmaps_grid(self, small_bbc):
        for _, _, idx in small_bbc.iter_blocks():
            grid = small_bbc.tile_bitmaps(idx)
            bitmap = small_bbc.block_bitmap(idx)
            for ti in range(4):
                for tj in range(4):
                    tile = bitmap[ti * 4 : (ti + 1) * 4, tj * 4 : (tj + 1) * 4]
                    expected = sum(
                        1 << (ei * 4 + ej)
                        for ei in range(4) for ej in range(4) if tile[ei, ej]
                    )
                    assert int(grid[ti, tj]) == expected

    def test_tile_ids_sorted_within_blocks(self, small_bbc):
        ids = small_bbc.tile_ids()
        for blk in range(small_bbc.nblocks):
            lo, hi = small_bbc.tile_ptr[blk], small_bbc.tile_ptr[blk + 1]
            segment = ids[lo:hi].astype(int)
            assert np.all(np.diff(segment) > 0)


class TestFileIO:
    def test_save_load_roundtrip(self, small_bbc, tmp_path):
        path = tmp_path / "matrix.npz"
        small_bbc.save(path)
        loaded = BBCMatrix.load(path)
        assert np.allclose(loaded.to_dense(), small_bbc.to_dense())

    def test_load_appends_npz_suffix(self, small_bbc, tmp_path):
        path = tmp_path / "matrix"
        small_bbc.save(path)
        loaded = BBCMatrix.load(path)
        assert loaded.nnz == small_bbc.nnz

    def test_loaded_preserves_shape(self, tmp_path):
        m = BBCMatrix.from_coo(COOMatrix((33, 7), [32], [6], [1.0]))
        m.save(tmp_path / "odd.npz")
        assert BBCMatrix.load(tmp_path / "odd.npz").shape == (33, 7)


class TestStorage:
    def test_metadata_bytes_positive(self, small_bbc):
        assert small_bbc.metadata_bytes() > 0

    def test_storage_total(self, small_bbc):
        assert small_bbc.storage_bytes() == small_bbc.metadata_bytes() + 8 * small_bbc.nnz

    def test_bbc_beats_csr_on_dense_blocks(self):
        """The Fig. 15 headline: BBC wins at high nonzeros-per-block."""
        dense = np.ones((64, 64))
        coo = COOMatrix.from_dense(dense)
        bbc = BBCMatrix.from_coo(coo)
        csr = CSRMatrix.from_coo(coo)
        assert csr.metadata_bytes() / bbc.metadata_bytes() > 8.0

    def test_csr_beats_bbc_on_scattered(self):
        """At very low NnzPB the bitmap overhead loses to plain CSR.

        A random permutation matrix is the adversarial case: one
        nonzero per row, almost every stored block holding one element.
        """
        rng = np.random.default_rng(1)
        perm = rng.permutation(256)
        coo = COOMatrix((256, 256), np.arange(256), perm, np.ones(256))
        bbc = BBCMatrix.from_coo(coo)
        csr = CSRMatrix.from_coo(coo)
        assert bbc.metadata_bytes() > csr.metadata_bytes()

    def test_lv2_pointer_overhead_tiny(self):
        """ValPtr_Lv2 must stay tiny (paper reports <= 0.3%; our 1-byte
        encoding lands under 1% on a dense matrix — see EXPERIMENTS.md)."""
        dense = np.ones((128, 128))
        bbc = BBCMatrix.from_dense(dense)
        lv2_bytes = bbc.val_ptr_lv2.size  # one byte each
        assert lv2_bytes / bbc.storage_bytes() <= 0.01

"""Tests for PageRank and the .mtx collection loader."""

import numpy as np
import pytest

from repro.apps.pagerank import pagerank, transition_matrix
from repro.apps.trace import KernelTrace
from repro.errors import ConvergenceError, FormatError, ShapeError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.workloads.collection import collection_summary, discover, load_collection
from repro.workloads.matrixmarket import write_mtx
from repro.workloads.structured import rmat


@pytest.fixture(scope="module")
def graph():
    return CSRMatrix.from_coo(rmat(6, edge_factor=6, seed=2))


class TestTransitionMatrix:
    def test_columns_stochastic(self, graph):
        p = transition_matrix(graph)
        col_sums = p.to_dense().sum(axis=0)
        assert np.allclose(col_sums, 1.0)

    def test_dangling_handled(self):
        # Vertex 2 has no outgoing edges.
        adj = CSRMatrix.from_coo(COOMatrix((3, 3), [0, 1], [1, 0], [1.0, 1.0]))
        p = transition_matrix(adj)
        assert np.allclose(p.to_dense().sum(axis=0), 1.0)

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            transition_matrix(CSRMatrix.empty((3, 4)))


class TestPageRank:
    def test_converges(self, graph):
        result = pagerank(graph)
        assert result.converged
        assert result.ranks.sum() == pytest.approx(1.0)
        assert (result.ranks > 0).all()

    def test_matches_dense_power_iteration(self, graph):
        result = pagerank(graph, damping=0.85)
        p = transition_matrix(graph).to_dense()
        n = p.shape[0]
        ranks = np.full(n, 1.0 / n)
        for _ in range(result.iterations):
            ranks = 0.85 * p @ ranks + 0.15 / n
        assert np.allclose(result.ranks, ranks)

    def test_deltas_decrease(self, graph):
        result = pagerank(graph)
        assert result.deltas[-1] < result.deltas[0]

    def test_hub_outranks_leaf(self):
        # A star: everything points at vertex 0.
        n = 8
        adj = CSRMatrix.from_coo(
            COOMatrix((n, n), list(range(1, n)), [0] * (n - 1), [1.0] * (n - 1))
        )
        result = pagerank(adj)
        assert result.top(1) == [0]

    def test_trace_records_spmv(self, graph):
        trace = KernelTrace()
        result = pagerank(graph, trace=trace, max_iterations=10)
        assert trace.kernel_counts()["spmv"] == result.iterations

    def test_rejects_bad_damping(self, graph):
        with pytest.raises(ConvergenceError):
            pagerank(graph, damping=1.5)

    def test_iteration_budget(self, graph):
        result = pagerank(graph, tol=0.0, max_iterations=4)
        assert result.iterations == 4
        assert not result.converged


class TestCollection:
    @pytest.fixture
    def collection_dir(self, tmp_path, rng):
        for i, nnz_target in enumerate((10, 50, 400)):
            n = 24 + 8 * i
            dense = rng.random((n, n)) * (rng.random((n, n)) < nnz_target / (n * n))
            write_mtx(tmp_path / f"matrix_{i}.mtx", COOMatrix.from_dense(dense))
        (tmp_path / "sub").mkdir()
        write_mtx(tmp_path / "sub" / "nested.mtx", COOMatrix((4, 4), [0], [0], [1.0]))
        (tmp_path / "notes.txt").write_text("not a matrix")
        return tmp_path

    def test_discover_finds_mtx_recursively(self, collection_dir):
        paths = discover(collection_dir)
        assert len(paths) == 4
        assert all(p.suffix == ".mtx" for p in paths)

    def test_discover_non_recursive(self, collection_dir):
        assert len(discover(collection_dir, recursive=False)) == 3

    def test_discover_rejects_file(self, collection_dir):
        with pytest.raises(FormatError):
            discover(collection_dir / "notes.txt")

    def test_load_all(self, collection_dir):
        loaded = dict(load_collection(collection_dir))
        assert len(loaded) == 4
        assert all(m.nnz >= 1 for m in loaded.values())

    def test_load_limit(self, collection_dir):
        assert len(list(load_collection(collection_dir, limit=2))) == 2

    def test_max_nnz_filter(self, collection_dir):
        loaded = dict(load_collection(collection_dir, max_nnz=60))
        assert all(m.nnz <= 60 for m in loaded.values())

    def test_skip_errors(self, collection_dir):
        (collection_dir / "broken.mtx").write_text("%%MatrixMarket matrix array real general\n")
        with pytest.raises(FormatError):
            list(load_collection(collection_dir))
        loaded = list(load_collection(collection_dir, skip_errors=True))
        assert len(loaded) == 4

    def test_summary(self, collection_dir):
        summary = collection_summary(collection_dir)
        assert len(summary) == 4
        name, shape, nnz = summary[0]
        assert isinstance(name, str) and nnz > 0

    def test_collection_feeds_simulator(self, collection_dir):
        from repro.arch.unistc import UniSTC
        from repro.formats.bbc import BBCMatrix
        from repro.sim.engine import simulate_kernel

        for name, matrix in load_collection(collection_dir, limit=1):
            report = simulate_kernel("spmv", BBCMatrix.from_coo(matrix), UniSTC())
            assert report.cycles >= 1

"""BBC block kernels against the golden references and dense numpy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.formats import BBCMatrix, CSRMatrix
from repro.kernels import bbc_kernels as bk
from repro.kernels import reference as ref
from repro.kernels.vector import SparseVector


def _pair(rng, m, n, density=0.25):
    dense = rng.random((m, n)) * (rng.random((m, n)) < density)
    return dense, BBCMatrix.from_dense(dense)


class TestSpMV:
    def test_matches_numpy(self, rng):
        dense, bbc = _pair(rng, 45, 33)
        x = rng.random(33)
        assert np.allclose(bk.spmv(bbc, x), dense @ x)

    def test_non_multiple_of_block(self, rng):
        dense, bbc = _pair(rng, 17, 19)
        x = rng.random(19)
        assert np.allclose(bk.spmv(bbc, x), dense @ x)

    def test_shape_mismatch(self, small_bbc):
        with pytest.raises(ShapeError):
            bk.spmv(small_bbc, np.ones(small_bbc.shape[1] + 1))

    def test_agrees_with_reference(self, rng):
        dense, bbc = _pair(rng, 30, 30)
        csr = CSRMatrix.from_dense(dense)
        x = rng.random(30)
        assert np.allclose(bk.spmv(bbc, x), ref.spmv(csr, x))

    @given(st.integers(1, 40), st.integers(1, 40), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_random(self, m, n, seed):
        gen = np.random.default_rng(seed)
        dense, bbc = _pair(gen, m, n)
        x = gen.standard_normal(n)
        assert np.allclose(bk.spmv(bbc, x), dense @ x)


class TestSpMSpV:
    def test_matches_numpy(self, rng):
        dense, bbc = _pair(rng, 40, 50)
        xs = rng.random(50) * (rng.random(50) < 0.5)
        out = bk.spmspv(bbc, SparseVector.from_dense(xs))
        assert np.allclose(out.to_dense(), dense @ xs)

    def test_empty_vector(self, small_bbc):
        out = bk.spmspv(small_bbc, SparseVector(small_bbc.shape[1], [], []))
        assert out.nnz == 0

    def test_length_mismatch(self, small_bbc):
        with pytest.raises(ShapeError):
            bk.spmspv(small_bbc, SparseVector(1, [], []))

    def test_agrees_with_spmv(self, rng):
        dense, bbc = _pair(rng, 30, 30)
        xs = rng.random(30) * (rng.random(30) < 0.5)
        assert np.allclose(
            bk.spmspv(bbc, SparseVector.from_dense(xs)).to_dense(),
            bk.spmv(bbc, xs),
        )


class TestSpMM:
    def test_matches_numpy(self, rng):
        dense, bbc = _pair(rng, 35, 28)
        b = rng.random((28, 64))
        assert np.allclose(bk.spmm(bbc, b), dense @ b)

    def test_odd_widths(self, rng):
        dense, bbc = _pair(rng, 18, 21)
        b = rng.random((21, 5))
        assert np.allclose(bk.spmm(bbc, b), dense @ b)

    def test_shape_mismatch(self, small_bbc):
        with pytest.raises(ShapeError):
            bk.spmm(small_bbc, np.ones((small_bbc.shape[1] + 1, 3)))


class TestSpGEMM:
    def test_matches_numpy(self, rng):
        da, a = _pair(rng, 30, 24)
        db, b = _pair(rng, 24, 36)
        assert np.allclose(bk.spgemm(a, b).to_dense(), da @ db)

    def test_square_self_product(self, rng):
        da, a = _pair(rng, 33, 33, density=0.15)
        assert np.allclose(bk.spgemm(a, a).to_dense(), da @ da)

    def test_returns_bbc(self, rng):
        _, a = _pair(rng, 20, 20)
        assert isinstance(bk.spgemm(a, a), BBCMatrix)

    def test_inner_mismatch(self, rng):
        _, a = _pair(rng, 10, 20)
        with pytest.raises(ShapeError):
            bk.spgemm(a, a)

    def test_agrees_with_reference(self, rng):
        da, a = _pair(rng, 25, 25)
        csr = CSRMatrix.from_dense(da)
        assert np.allclose(
            bk.spgemm(a, a).to_dense(), ref.spgemm(csr, csr).to_dense()
        )

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 30), st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_random(self, m, k, n, seed):
        gen = np.random.default_rng(seed)
        da, a = _pair(gen, m, k)
        db, b = _pair(gen, k, n)
        assert np.allclose(bk.spgemm(a, b).to_dense(), da @ db)

"""Tests for buffer capacity accounting, the Benes router and wake-up."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.benes import apply_routing, benes_stage_count, route
from repro.arch.buffers import (
    assert_fits,
    minimum_config_bytes,
    task_demand,
    verify_paper_sizing,
)
from repro.arch.config import FP32, UniSTCConfig
from repro.arch.tasks import T1Task
from repro.arch.unistc import UniSTC
from repro.errors import ConfigError

from tests.conftest import make_block_task

DENSE = T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))


class TestBufferSizing:
    def test_paper_sizes_cover_worst_case(self):
        """The 144B/2KB/1KB buffers fit a dense FP64 T1 task (§IV-C)."""
        assert all(verify_paper_sizing().values())

    def test_matrix_a_buffer_is_exact(self):
        """2 KB / 8 B = exactly one dense 16x16 FP64 block."""
        demand = task_demand(DENSE)
        assert demand.matrix_a_bytes == 2048
        assert demand.matrix_a_bytes == UniSTCConfig().matrix_a_buffer_bytes

    def test_fp32_halves_value_demand(self):
        demand = task_demand(DENSE, UniSTCConfig(precision=FP32))
        assert demand.matrix_a_bytes == 1024

    def test_sparse_task_low_occupancy(self):
        task = make_block_task(0.05, 0.05, 1)
        occ = task_demand(task).occupancy(UniSTCConfig())
        assert occ["matrix_a"] < 0.3

    def test_minimum_config_matches_paper(self):
        minimum = minimum_config_bytes()
        cfg = UniSTCConfig()
        assert minimum["matrix_a"] <= cfg.matrix_a_buffer_bytes
        assert minimum["meta"] <= cfg.meta_buffer_bytes
        assert minimum["accumulator"] <= cfg.accumulator_buffer_bytes

    def test_assert_fits_raises_on_tiny_buffers(self):
        tiny = UniSTCConfig(matrix_a_buffer_bytes=64)
        with pytest.raises(ConfigError):
            assert_fits(DENSE, tiny)

    def test_assert_fits_returns_demand(self):
        demand = assert_fits(make_block_task(0.2, 0.2, 2))
        assert demand.meta_bytes > 0


class TestBenes:
    def test_stage_counts(self):
        assert benes_stage_count(2) == 1
        assert benes_stage_count(4) == 3
        assert benes_stage_count(8) == 5
        assert benes_stage_count(16) == 7

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            benes_stage_count(6)
        with pytest.raises(ConfigError):
            route([0, 2, 1])

    def test_rejects_non_permutation(self):
        with pytest.raises(ConfigError):
            route([0, 0, 1, 1])

    def test_identity_route(self):
        routing = route(list(range(8)))
        assert apply_routing(routing, list(range(8))) == list(range(8))

    def test_reversal_route(self):
        perm = list(reversed(range(16)))
        routing = route(perm)
        assert apply_routing(routing, list(range(16))) == perm

    @given(st.integers(0, 10_000), st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=60, deadline=None)
    def test_any_permutation_routable(self, seed, n):
        """Rearrangeable non-blocking: every permutation routes."""
        perm = list(np.random.default_rng(seed).permutation(n))
        routing = route(perm)
        assert apply_routing(routing, list(range(n))) == perm
        assert routing.stage_count == benes_stage_count(n)

    def test_switch_count_formula(self):
        routing = route(list(range(16)))
        # N/2 switches per stage x (2 log2 N - 1) stages.
        assert routing.switch_count == 8 * 7

    def test_crossed_switches_bounded(self):
        routing = route(list(reversed(range(8))))
        assert 0 < routing.crossed_switches <= routing.switch_count


class TestWakeupModel:
    def test_default_lookahead_hides_wakeup(self):
        """With lookahead >= wakeup (the paper's assumption) cycle
        counts match the no-gating configuration exactly."""
        hidden = UniSTC(UniSTCConfig(dpg_wakeup_cycles=1, lookahead_cycles=1))
        ungated = UniSTC(UniSTCConfig(dynamic_gating=False))
        for seed in range(5):
            task = make_block_task(0.3, 0.3, seed)
            assert hidden.simulate_block(task).cycles == ungated.simulate_block(task).cycles

    def test_no_lookahead_exposes_stalls(self):
        exposed = UniSTC(UniSTCConfig(dpg_wakeup_cycles=2, lookahead_cycles=0))
        hidden = UniSTC()
        slower = 0
        for seed in range(6):
            task = make_block_task(0.25, 0.4, seed)
            if exposed.simulate_block(task).cycles > hidden.simulate_block(task).cycles:
                slower += 1
        assert slower >= 3  # demand fluctuates, so stalls appear often

    def test_stall_cycles_counted_in_histogram(self):
        exposed = UniSTC(UniSTCConfig(dpg_wakeup_cycles=3, lookahead_cycles=0))
        task = make_block_task(0.25, 0.4, 1)
        result = exposed.simulate_block(task)
        assert result.util_hist.cycles == result.cycles

    def test_dpg_cycle_partition_preserved(self):
        exposed = UniSTC(UniSTCConfig(dpg_wakeup_cycles=2, lookahead_cycles=0))
        task = make_block_task(0.3, 0.3, 2)
        result = exposed.simulate_block(task)
        total = (result.counters.get("dpg_active_cycles")
                 + result.counters.get("dpg_gated_cycles"))
        assert total == exposed.config.num_dpgs * result.cycles

    def test_cache_key_distinguishes_wakeup(self):
        assert (UniSTC(UniSTCConfig(lookahead_cycles=0)).cache_key()
                != UniSTC().cache_key())

"""Tests for end-to-end model DSE (repro.dse.model)."""

import pytest

from repro.dse import (
    MODEL_OBJECTIVES,
    ModelEvaluation,
    evaluate_model_candidates,
    model_frontier,
)
from repro.dse.pareto import pareto_front
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def evaluations():
    """Two buildable candidates plus one invalid combo, on a tiny model."""
    combos = [
        (("num_dpgs", 8), ("tile", 4)),
        (("num_dpgs", 4), ("tile", 4)),
        (("num_dpgs", 8), ("tile", 3)),   # tile must divide the block
    ]
    return evaluate_model_candidates("resnet50", combos, scale=0.05)


class TestModelObjectives:
    def test_axes_and_senses(self):
        assert MODEL_OBJECTIVES == {"e2e_latency": "min",
                                    "e2e_energy": "min",
                                    "area_mm2": "min",
                                    "eed": "max"}


class TestEvaluateModelCandidates:
    def test_invalid_combo_yields_none_slot(self, evaluations):
        assert len(evaluations) == 3
        assert evaluations[0] is not None
        assert evaluations[1] is not None
        assert evaluations[2] is None

    def test_objectives_are_end_to_end(self, evaluations):
        for ev in evaluations[:2]:
            assert ev.e2e_latency > 0
            assert ev.e2e_energy_pj > 0
            assert ev.area_mm2 > 0
            assert ev.speedup > 0 and ev.eed > 0
            assert set(ev.objectives()) == set(MODEL_OBJECTIVES)
            assert ev.objectives()["e2e_latency"] == float(ev.e2e_latency)
            # the full ModelReport rides along for drill-down
            assert ev.report.e2e_latency == ev.e2e_latency
            assert ev.report.model == "resnet50"

    def test_candidates_reuse_design_point_vocabulary(self, evaluations):
        point = evaluations[0].point
        assert point.matrix == "model:resnet50"
        assert point.kernel == "model"
        assert point.config().num_dpgs == 8

    def test_fewer_dpgs_costs_latency(self, evaluations):
        # Halving the DPG count cannot make the end-to-end pass faster.
        assert evaluations[1].e2e_latency >= evaluations[0].e2e_latency


class TestModelFrontier:
    def test_frontier_over_survivors(self, evaluations):
        front, survivors = model_frontier(evaluations)
        assert [e for e in evaluations if e is not None] == survivors
        assert 0 < len(front.frontier) <= len(survivors)
        assert front.knee in front.frontier
        # the frontier is exactly pareto_front over the survivor
        # objective vectors with the model senses
        want = pareto_front([e.objectives() for e in survivors],
                            MODEL_OBJECTIVES)
        assert front == want

    def test_all_failed_is_an_error(self):
        with pytest.raises(ConfigError, match="no model candidates"):
            model_frontier([None, None])

    def test_evaluation_is_frozen(self, evaluations):
        with pytest.raises(AttributeError):
            evaluations[0].e2e_latency = 1

    def test_exported_from_package(self):
        import repro.dse as dse

        for name in ("ModelEvaluation", "evaluate_model_candidates",
                     "model_frontier", "MODEL_OBJECTIVES"):
            assert hasattr(dse, name)
        assert ModelEvaluation is dse.ModelEvaluation

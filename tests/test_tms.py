"""Tests for the Tile Multiply Scheduler."""

import numpy as np
import pytest

from repro.arch.config import UniSTCConfig
from repro.arch.tms import ORDERINGS, TileMultiplyScheduler, tile_products
from repro.errors import SimulationError


@pytest.fixture
def tms():
    return TileMultiplyScheduler(UniSTCConfig())


def _dense_products():
    """All 64 T3 tasks at the 64-product maximum (a dense block)."""
    a_cols = np.full((4, 4, 4), 4, dtype=np.int64)
    b_rows = np.full((4, 4, 4), 4, dtype=np.int64)
    return tile_products(a_cols, b_rows)


class TestTileProducts:
    def test_dense(self):
        prod = _dense_products()
        assert prod.shape == (4, 4, 4)
        assert (prod == 64).all()

    def test_empty(self):
        zero = np.zeros((4, 4, 4), dtype=np.int64)
        assert tile_products(zero, zero).sum() == 0

    def test_formula(self, rng):
        a_cols = rng.integers(0, 5, size=(4, 4, 4))
        b_rows = rng.integers(0, 5, size=(4, 4, 4))
        prod = tile_products(a_cols, b_rows)
        for k in range(4):
            for i in range(4):
                for j in range(4):
                    expected = int((a_cols[i, k] * b_rows[k, j]).sum())
                    assert prod[k, i, j] == expected

    def test_vector_operand(self, rng):
        a_cols = rng.integers(0, 5, size=(4, 4, 4))
        b_rows = rng.integers(0, 2, size=(4, 1, 4))
        prod = tile_products(a_cols, b_rows)
        assert prod.shape == (4, 4, 1)


class TestTaskGeneration:
    def test_one_task_per_nonzero_position(self, tms, rng):
        products = rng.integers(0, 3, size=(4, 4, 4))
        layers = tms.generate_tasks(products)
        total = sum(len(layer) for layer in layers)
        assert total == int((products > 0).sum())

    def test_task_products_recorded(self, tms):
        products = np.zeros((4, 4, 4), dtype=np.int64)
        products[2, 1, 3] = 17
        layers = tms.generate_tasks(products)
        task = layers[2][0]
        assert (task.i, task.j, task.k, task.products) == (1, 3, 2, 17)


class TestOrdering:
    def test_outer_order_is_layer_major(self, tms):
        layers = tms.generate_tasks(_dense_products())
        ordered = tms.order_tasks(layers, "outer")
        ks = [t.k for t in ordered]
        assert ks == sorted(ks)

    def test_dot_order_groups_outputs(self, tms):
        layers = tms.generate_tasks(_dense_products())
        ordered = tms.order_tasks(layers, "dot")
        pairs = [(t.i, t.j) for t in ordered]
        assert pairs == sorted(pairs)

    def test_rowrow_order(self, tms):
        layers = tms.generate_tasks(_dense_products())
        ordered = tms.order_tasks(layers, "rowrow")
        keys = [(t.i, t.k, t.j) for t in ordered]
        assert keys == sorted(keys)

    def test_unknown_strategy(self, tms):
        with pytest.raises(SimulationError):
            tms.order_tasks([], "zigzag")

    def test_orderings_registry(self):
        assert set(ORDERINGS) == {"outer", "dot", "rowrow"}

    def test_adaptive_direction_column_major_for_tall(self):
        """More nonzero rows than columns -> column-major (§IV-A)."""
        tms = TileMultiplyScheduler(UniSTCConfig())
        products = np.zeros((4, 4, 4), dtype=np.int64)
        products[0, :, 0] = 5          # 4 rows, 1 column
        products[0, 0, 1] = 5
        ordered = tms.order_tasks(tms.generate_tasks(products), "outer")
        js = [t.j for t in ordered]
        assert js == sorted(js)        # column-major: j advances outermost

    def test_adaptive_direction_row_major_for_wide(self):
        tms = TileMultiplyScheduler(UniSTCConfig())
        products = np.zeros((4, 4, 4), dtype=np.int64)
        products[0, 0, :] = 5          # 1 row, 4 columns
        ordered = tms.order_tasks(tms.generate_tasks(products), "outer")
        is_ = [t.i for t in ordered]
        assert is_ == sorted(is_)


class TestDispatch:
    def test_dense_block_is_64_cycles(self, tms):
        outcome = tms.schedule(_dense_products())
        assert outcome.total_cycles == 64
        assert outcome.total_products == 4096

    def test_capacity_respected(self, tms, rng):
        products = rng.integers(0, 65, size=(4, 4, 4))
        outcome = tms.schedule(products)
        for cyc in outcome.cycles:
            assert cyc.products <= tms.config.macs

    def test_dpg_limit_respected(self, rng):
        tms = TileMultiplyScheduler(UniSTCConfig(num_dpgs=4, tile_queue_depth=8))
        products = rng.integers(0, 3, size=(4, 4, 4))
        outcome = tms.schedule(products)
        for cyc in outcome.cycles:
            assert cyc.tasks <= 4

    def test_no_same_cycle_write_conflicts(self, tms, rng):
        products = rng.integers(0, 3, size=(4, 4, 4))
        ordered = tms.order_tasks(tms.generate_tasks(products), "dot")
        outcome = tms.dispatch(ordered)
        # The dispatcher may stall but never co-schedules one output tile.
        for cyc in outcome.cycles:
            assert len(cyc.a_tiles) <= cyc.tasks

    def test_dot_order_conflicts_exceed_outer(self, tms):
        """Fig. 10: dot-product ordering suffers the most write conflicts."""
        gen = np.random.default_rng(0)
        dot_rate = outer_rate = 0.0
        for seed in range(10):
            g = np.random.default_rng(seed)
            products = (g.random((4, 4, 4)) < 0.6) * g.integers(1, 9, size=(4, 4, 4))
            layers = tms.generate_tasks(products)
            dot = tms.dispatch(tms.order_tasks(layers, "dot"))
            outer = tms.dispatch(tms.order_tasks(layers, "outer"))
            dot_rate += dot.conflict_rate()
            outer_rate += outer.conflict_rate()
        assert dot_rate > outer_rate

    def test_all_products_scheduled(self, tms, rng):
        for seed in range(5):
            g = np.random.default_rng(seed)
            products = g.integers(0, 10, size=(4, 4, 4))
            outcome = tms.schedule(products)
            assert outcome.total_products == int(products.sum())

    def test_conflict_stall_can_be_disabled(self, rng):
        cfg = UniSTCConfig(conflict_stall=False)
        tms = TileMultiplyScheduler(cfg)
        products = rng.integers(1, 3, size=(4, 4, 4))
        ordered = tms.order_tasks(tms.generate_tasks(products), "dot")
        outcome = tms.dispatch(ordered)
        assert outcome.conflict_cycles == 0


class TestOutcomeMetrics:
    def test_reuse_rate_bounds(self, tms, rng):
        products = rng.integers(0, 5, size=(4, 4, 4))
        outcome = tms.schedule(products)
        for op in ("a", "b"):
            assert 0.0 <= outcome.reuse_rate(op) <= 1.0

    def test_reuse_rate_rejects_bad_operand(self, tms):
        outcome = tms.schedule(_dense_products())
        with pytest.raises(ValueError):
            outcome.reuse_rate("c")

    def test_parallel_tasks_bounded_by_dpgs(self, tms, rng):
        products = rng.integers(0, 2, size=(4, 4, 4))
        outcome = tms.schedule(products)
        assert outcome.mean_parallel_tasks() <= tms.config.num_dpgs

    def test_aligned_tasks_bounded_by_parallel(self, tms, rng):
        products = rng.integers(0, 2, size=(4, 4, 4))
        outcome = tms.schedule(products)
        assert outcome.mean_aligned_tasks() <= outcome.mean_parallel_tasks() + 1e-9

    def test_empty_outcome_metrics(self, tms):
        outcome = tms.dispatch([])
        assert outcome.total_cycles == 0
        assert outcome.mean_parallel_tasks() == 0.0
        assert outcome.conflict_rate() == 0.0

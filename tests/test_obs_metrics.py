"""Tests for the zero-dependency metrics registry."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    label_key,
    tag_gauges,
    wire_key,
)


class TestLabels:
    def test_canonical_order(self):
        assert label_key({"b": 1, "a": 2}) == (("a", "2"), ("b", "1"))

    def test_values_stringified(self):
        assert label_key({"k": 3.5}) == (("k", "3.5"),)


class TestCounter:
    def test_increments_accumulate(self):
        c = Counter("hits")
        c.inc(1, kernel="spmv")
        c.inc(2, kernel="spmv")
        c.inc(5, kernel="spmm")
        assert c.value(kernel="spmv") == 3
        assert c.value(kernel="spmm") == 5
        assert c.total == 8

    def test_unlabelled_series(self):
        c = Counter("n")
        c.inc()
        c.inc()
        assert c.value() == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            Counter("n").inc(-1)

    def test_registry_inc_shortcut(self):
        reg = MetricsRegistry()
        reg.inc("a", 2, x=1)
        reg.inc("a", 3, x=1)
        assert reg.counter("a").value(x=1) == 5


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set("depth", 3, core=0)
        reg.set("depth", 7, core=0)
        assert reg.gauge("depth").value(core=0) == 7

    def test_missing_series_is_none(self):
        assert MetricsRegistry().gauge("g").value(core=9) is None


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 1.0, 5.0, 50.0, 500.0):
            h.observe(v)
        series = h.get()
        # <=1, <=1 (boundary inclusive), <=10, <=100, overflow
        assert series.counts == [2, 1, 1, 1]
        assert series.count == 5
        assert series.sum == pytest.approx(556.5)
        assert series.min == 0.5 and series.max == 500.0
        assert series.mean == pytest.approx(556.5 / 5)

    def test_default_bounds(self):
        h = Histogram("t")
        h.observe(0.5)
        assert h.bounds == DEFAULT_BUCKETS
        assert len(h.get().counts) == len(DEFAULT_BUCKETS) + 1

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("bad", bounds=(2.0, 1.0))

    def test_per_label_series(self):
        h = Histogram("t", bounds=(1.0,))
        h.observe(0.5, kernel="spmv")
        h.observe(2.0, kernel="spmm")
        assert h.get(kernel="spmv").counts == [1, 0]
        assert h.get(kernel="spmm").counts == [0, 1]


class TestRegistry:
    def test_snapshot_is_json_ready(self):
        reg = MetricsRegistry()
        reg.inc("c", 2, kernel="spmv")
        reg.set("g", 1.5)
        reg.observe("h", 0.02, stc="uni")
        snap = reg.snapshot()
        json.dumps(snap)  # must serialise without error
        assert snap["counters"]["c"] == [
            {"labels": {"kernel": "spmv"}, "value": 2.0}
        ]
        assert snap["gauges"]["g"][0]["value"] == 1.5
        assert snap["histograms"]["h"][0]["count"] == 1

    def test_snapshot_empty_after_reset(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(1.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.reset()
        assert reg.counter("c").total == 0

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("c", 4)
        path = tmp_path / "m.json"
        reg.write_json(path)
        assert json.loads(path.read_text())["counters"]["c"][0]["value"] == 4


class TestMerge:
    def test_counters_add_gauges_overwrite(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.inc("tasks", 10, kernel="spmv")
        worker.inc("tasks", 5, kernel="spmv")
        worker.inc("tasks", 7, kernel="spmm")
        main.set("occupancy", 0.2)
        worker.set("occupancy", 0.9)
        main.merge(worker)
        assert main.counter("tasks").value(kernel="spmv") == 15
        assert main.counter("tasks").value(kernel="spmm") == 7
        assert main.gauge("occupancy").value() == 0.9

    def test_histograms_add_bucketwise(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.histogram("lat", bounds=(1.0, 10.0)).observe(0.5)
        worker.histogram("lat", bounds=(1.0, 10.0)).observe(5.0)
        worker.histogram("lat", bounds=(1.0, 10.0)).observe(50.0)
        main.merge(worker)
        series = main.histogram("lat").get()
        assert series.counts == [1, 1, 1]
        assert series.count == 3
        assert series.min == 0.5 and series.max == 50.0

    def test_merge_accepts_plain_snapshot(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        worker.inc("n", 3)
        main.merge(json.loads(json.dumps(worker.snapshot())))
        assert main.counter("n").total == 3

    def test_parallel_worker_merge(self):
        """The join pattern: N worker registries fold into one."""
        main = MetricsRegistry()
        for core in range(4):
            worker = MetricsRegistry()
            worker.inc("core.tasks", 10 + core, core=core)
            worker.observe("core.wall_s", 0.001 * (core + 1))
            main.merge(worker)
        assert main.counter("core.tasks").total == 10 + 11 + 12 + 13
        assert main.histogram("core.wall_s").get().count == 4

    def test_bound_mismatch_rejected(self):
        main, worker = MetricsRegistry(), MetricsRegistry()
        main.histogram("h", bounds=(1.0,)).observe(0.5)
        worker.histogram("h", bounds=(2.0,)).observe(0.5)
        with pytest.raises(ConfigError):
            main.merge(worker)


class TestWireFormat:
    def test_snapshot_bounds_carry_the_inf_marker(self):
        """Regression: the overflow bucket must be visible on the wire —
        len(bounds) == len(counts) and bucket counts sum to count."""
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0, 10.0)).observe(0.5)
        reg.histogram("h").observe(500.0)   # lands in the overflow bucket
        (entry,) = reg.snapshot()["histograms"]["h"]
        assert entry["bounds"] == [1.0, 10.0, None]
        assert len(entry["bounds"]) == len(entry["counts"])
        assert sum(entry["counts"]) == entry["count"] == 2

    def test_merge_accepts_marked_and_legacy_bounds(self):
        """Snapshots written before the null marker existed still merge."""
        for bounds in ([1.0, 10.0], [1.0, 10.0, None]):
            reg = MetricsRegistry()
            reg.histogram("h", bounds=(1.0, 10.0)).observe(0.5)
            reg.merge({"histograms": {"h": [{
                "labels": {}, "bounds": bounds, "counts": [0, 1, 1],
                "sum": 55.0, "count": 2, "min": 5.0, "max": 50.0}]}})
            series = reg.histogram("h").get()
            assert series.counts == [1, 1, 1]
            assert series.count == 3

    def test_tag_gauges_adds_labels_without_clobbering(self):
        reg = MetricsRegistry()
        reg.inc("c", 2)
        reg.set("g", 1.0)
        reg.set("g2", 3.0, shard="explicit")
        tagged = tag_gauges(reg.snapshot(), shard="s0")
        assert tagged["gauges"]["g"][0]["labels"] == {"shard": "s0"}
        # A label already on the series wins over the tag.
        assert tagged["gauges"]["g2"][0]["labels"] == {"shard": "explicit"}
        assert tagged["counters"] == reg.snapshot()["counters"]


class TestSnapshotDelta:
    def test_only_dirty_series_are_emitted(self):
        reg = MetricsRegistry()
        reg.inc("a", 1)
        reg.inc("b", 1, kernel="spmv")
        assert reg.snapshot_delta() == {
            "c": {"a": 1.0, wire_key("b", (("kernel", "spmv"),)): 1.0}}
        reg.inc("a", 2)   # only "a" is dirty now
        assert reg.snapshot_delta() == {"c": {"a": 3.0}}

    def test_values_are_cumulative_not_increments(self):
        reg = MetricsRegistry()
        reg.inc("a", 1)
        reg.snapshot_delta()
        reg.inc("a", 1)
        assert reg.snapshot_delta()["c"]["a"] == 2.0

    def test_idle_registry_yields_empty_delta(self):
        reg = MetricsRegistry()
        assert reg.snapshot_delta() == {}
        reg.inc("a")
        reg.snapshot_delta()
        assert reg.snapshot_delta() == {}

    def test_histogram_packing_is_positional(self):
        reg = MetricsRegistry()
        reg.histogram("h", bounds=(1.0,))
        reg.observe("h", 0.5)
        packed = reg.snapshot_delta()["h"]["h"]
        bounds, counts, total, count, lo, hi = packed
        assert bounds == [1.0, None] and counts == [1, 0]
        assert total == 0.5 and count == 1 and lo == hi == 0.5

    def test_gauge_delta_reflects_last_write(self):
        reg = MetricsRegistry()
        reg.set("g", 1.0)
        reg.set("g", 7.0)
        assert reg.snapshot_delta() == {"g": {"g": 7.0}}

    def test_merge_marks_series_dirty(self):
        """A supervisor that merges a worker snapshot must stream the
        merged histograms onward in its own next delta."""
        reg = MetricsRegistry()
        worker = MetricsRegistry()
        worker.observe("h", 0.5)
        reg.merge(worker)
        assert "h" in reg.snapshot_delta().get("h", {})

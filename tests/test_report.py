"""Tests for the reproduction-report generator."""

import json

import pytest

from repro.analysis.report import (
    PAPER_VALUES,
    ReportRow,
    build_rows,
    generate_report,
    render_markdown,
)
from repro.cli import main
from repro.errors import FormatError


def _write_run(path, metrics):
    payload = {"benchmarks": [
        {"name": name, "extra_info": info} for name, info in metrics.items()
    ]}
    path.write_text(json.dumps(payload))


class TestBuildRows:
    def test_pairs_with_paper_values(self, tmp_path):
        _write_run(tmp_path / "run.json", {
            "test_fig18_io_energy": {"write_c_gap": 7.0},
            "test_fig99_custom": {"foo": 1.0},
        })
        rows = build_rows(tmp_path / "run.json")
        by_metric = {(r.benchmark, r.metric): r for r in rows}
        paired = by_metric[("test_fig18_io_energy", "write_c_gap")]
        assert paired.paper == 6.5
        assert paired.ratio == pytest.approx(7.0 / 6.5)
        unpaired = by_metric[("test_fig99_custom", "foo")]
        assert unpaired.paper is None
        assert unpaired.ratio is None

    def test_rejects_bad_json(self, tmp_path):
        (tmp_path / "bad.json").write_text("{}")
        with pytest.raises(FormatError):
            build_rows(tmp_path / "bad.json")


class TestRenderMarkdown:
    def test_sections(self):
        rows = [
            ReportRow("b1", "m1", 2.0, 1.0),
            ReportRow("b2", "m2", 3.0, None),
        ]
        md = render_markdown(rows)
        assert "## Paper vs measured" in md
        assert "## Measured (no single published value)" in md
        assert "| b1 | m1 | 1 | 2 | 2.00 |" in md
        assert "1/1 compared metrics land within 2x" in md

    def test_within_2x_count(self):
        rows = [
            ReportRow("b", "near", 1.1, 1.0),
            ReportRow("b", "far", 5.0, 1.0),
        ]
        md = render_markdown(rows)
        assert "1/2 compared metrics" in md

    def test_empty_rows(self):
        md = render_markdown([])
        assert md.startswith("# Reproduction report")


class TestPaperValueCatalogue:
    def test_headline_entries_present(self):
        assert PAPER_VALUES["test_fig21_amg_speedup"]["uni_spmv"] == 4.84
        assert PAPER_VALUES["test_tab09_area"]["total_mm2"] == 0.0425

    def test_catalogue_metrics_exist_in_benchmarks(self):
        """Every catalogued benchmark name must correspond to a real
        benchmark file target (guards against silent renames)."""
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parents[1] / "benchmarks"
        source = "\n".join(p.read_text() for p in bench_dir.glob("test_*.py"))
        for bench in PAPER_VALUES:
            assert f"def {bench.split('[')[0]}(" in source, bench


class TestCLIReport:
    def test_report_command(self, tmp_path, capsys):
        _write_run(tmp_path / "run.json", {
            "test_fig18_io_energy": {"write_c_gap": 6.9},
        })
        assert main(["report", str(tmp_path / "run.json")]) == 0
        out = capsys.readouterr().out
        assert "Paper vs measured" in out
        assert "write_c_gap" in out

    def test_generate_report_convenience(self, tmp_path):
        _write_run(tmp_path / "run.json", {"x": {"y": 1.0}})
        assert "Reproduction report" in generate_report(tmp_path / "run.json")

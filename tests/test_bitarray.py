"""Tests for the packed bitmap utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.formats import bitarray as ba


class TestPopcount:
    def test_zero(self):
        assert ba.popcount(0) == 0

    def test_all_ones_16bit(self):
        assert ba.popcount(0xFFFF) == 16

    def test_single_bits(self):
        for i in range(20):
            assert ba.popcount(1 << i) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ba.popcount(-1)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_bin_count(self, value):
        assert ba.popcount(value) == bin(value).count("1")


class TestPopcountArray:
    def test_uint16_array(self):
        arr = np.array([0, 1, 3, 0xFFFF, 0x8000], dtype=np.uint16)
        assert ba.popcount_array(arr).tolist() == [0, 1, 2, 16, 1]

    def test_uint64_array(self):
        arr = np.array([2**63, 2**64 - 1], dtype=np.uint64)
        assert ba.popcount_array(arr).tolist() == [1, 64]

    def test_preserves_shape(self):
        arr = np.arange(12, dtype=np.uint8).reshape(3, 4)
        assert ba.popcount_array(arr).shape == (3, 4)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            ba.popcount_array(np.ones(3))

    @given(st.lists(st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=32))
    def test_matches_scalar_popcount(self, values):
        arr = np.asarray(values, dtype=np.uint16)
        expected = [bin(v).count("1") for v in values]
        assert ba.popcount_array(arr).tolist() == expected


class TestPackUnpack:
    def test_roundtrip_4x4(self):
        grid = np.zeros((4, 4), dtype=bool)
        grid[0, 0] = grid[1, 2] = grid[3, 3] = True
        packed = ba.pack_bits(grid)
        assert np.array_equal(ba.unpack_bits(packed, 4, 4), grid)

    def test_pack_row_major_lsb_first(self):
        grid = np.zeros((2, 3), dtype=bool)
        grid[0, 1] = True   # position 1
        grid[1, 0] = True   # position 3
        assert ba.pack_bits(grid) == (1 << 1) | (1 << 3)

    def test_unpack_overflow_rejected(self):
        with pytest.raises(ValueError):
            ba.unpack_bits(1 << 16, 4, 4)

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_roundtrip_any_16bit(self, bitmap):
        assert ba.pack_bits(ba.unpack_bits(bitmap, 4, 4)) == bitmap

    def test_fig1_example(self):
        """The Fig. 1 bitmap: mask 1010 0100 0000 1101 read row-major."""
        grid = np.array(
            [[1, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 0], [1, 1, 0, 1]], dtype=bool
        )
        packed = ba.pack_bits(grid)
        assert ba.popcount(packed) == 6
        assert np.array_equal(ba.unpack_bits(packed, 4, 4), grid)


class TestBitPositions:
    def test_empty(self):
        assert ba.bit_positions(0) == []

    def test_sorted(self):
        assert ba.bit_positions(0b101001) == [0, 3, 5]


class TestRowColMasks:
    def test_row_mask(self):
        bitmap = ba.pack_bits(np.eye(4, dtype=bool))
        for i in range(4):
            assert ba.row_mask(bitmap, i) == 1 << i

    def test_col_mask(self):
        bitmap = ba.pack_bits(np.eye(4, dtype=bool))
        for j in range(4):
            assert ba.col_mask(bitmap, j) == 1 << j

    def test_bitmap_from_rows_roundtrip(self):
        rows = [0b1010, 0b0001, 0b1111, 0b0000]
        bitmap = ba.bitmap_from_rows(rows)
        for i, expected in enumerate(rows):
            assert ba.row_mask(bitmap, i) == expected

    def test_bitmap_from_rows_rejects_wide(self):
        with pytest.raises(ValueError):
            ba.bitmap_from_rows([0b10000])


class TestTranspose:
    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_involution(self, bitmap):
        assert ba.transpose_bitmap(ba.transpose_bitmap(bitmap)) == bitmap

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_matches_numpy(self, bitmap):
        grid = ba.unpack_bits(bitmap, 4, 4)
        assert ba.transpose_bitmap(bitmap) == ba.pack_bits(grid.T)


class TestOuterProduct:
    def test_full(self):
        assert ba.outer_product_bitmap(0xF, 0xF) == 0xFFFF

    def test_empty_sides(self):
        assert ba.outer_product_bitmap(0, 0xF) == 0
        assert ba.outer_product_bitmap(0xF, 0) == 0

    @given(
        st.integers(min_value=0, max_value=0xF),
        st.integers(min_value=0, max_value=0xF),
    )
    def test_popcount_product(self, col, row):
        out = ba.outer_product_bitmap(col, row)
        assert ba.popcount(out) == ba.popcount(col) * ba.popcount(row)

    @given(
        st.integers(min_value=0, max_value=0xF),
        st.integers(min_value=0, max_value=0xF),
    )
    def test_matches_numpy_outer(self, col, row):
        c = np.array([(col >> i) & 1 for i in range(4)], dtype=bool)
        r = np.array([(row >> j) & 1 for j in range(4)], dtype=bool)
        assert ba.outer_product_bitmap(col, row) == ba.pack_bits(np.outer(c, r))


class TestDotPattern:
    def test_intersection(self):
        assert ba.dot_pattern(0b1010, 0b0110) == 0b0010

    def test_fig9_example(self):
        """The paper's '49' T4 code: pattern 0x9 from matching indices."""
        assert ba.dot_pattern(0b1001, 0b1111) == 0b1001


class TestNnzRowsCols:
    def test_diagonal(self):
        bitmap = ba.pack_bits(np.eye(4, dtype=bool))
        assert ba.nnz_rows(bitmap) == 4
        assert ba.nnz_cols(bitmap) == 4

    def test_single_row(self):
        grid = np.zeros((4, 4), dtype=bool)
        grid[2] = True
        bitmap = ba.pack_bits(grid)
        assert ba.nnz_rows(bitmap) == 1
        assert ba.nnz_cols(bitmap) == 4


class TestGridToTiles:
    def test_occupancy(self):
        grid = np.zeros((16, 16), dtype=bool)
        grid[0, 0] = True          # tile (0, 0)
        grid[5, 9] = True          # tile (1, 2)
        occupancy, tiles = ba.grid_to_tiles(grid, 4)
        assert occupancy.sum() == 2
        assert occupancy[0, 0] and occupancy[1, 2]
        assert tiles.shape == (4, 4, 4, 4)
        assert tiles[1, 2, 1, 1]

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            ba.grid_to_tiles(np.zeros((10, 16), dtype=bool), 4)

    def test_tiles_cover_grid(self, rng):
        grid = rng.random((16, 16)) < 0.3
        occupancy, tiles = ba.grid_to_tiles(grid, 4)
        assert tiles.sum() == grid.sum()
        assert occupancy.any(axis=None) == grid.any(axis=None)

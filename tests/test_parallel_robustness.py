"""Edge-case tests for the static partitioner and SpGEMM B-operand
handling in :mod:`repro.sim.parallel` / :mod:`repro.sim.memory`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.unistc import UniSTC
from repro.errors import SimulationError
from repro.formats.bbc import BBCMatrix
from repro.formats.coo import COOMatrix
from repro.sim.memory import kernel_traffic_bytes, spgemm_output_nnz
from repro.sim.parallel import (
    block_row_work,
    partition_block_rows,
    simulate_parallel,
)
from repro.workloads.synthetic import banded


def assert_exact_cover(parts, size):
    """Ranges must tile [0, size) in order, without gaps or overlap."""
    cursor = 0
    for part in parts:
        assert part.start == cursor
        assert part.stop >= part.start
        cursor = part.stop
    assert cursor == size


class TestPartitionEdgeCases:
    def test_more_parts_than_block_rows(self):
        work = np.array([7, 3, 5], dtype=np.int64)
        parts = partition_block_rows(work, 8)
        assert len(parts) == 8
        assert_exact_cover(parts, work.size)
        # Every row lands in exactly one part.
        assigned = [r for part in parts for r in part]
        assert assigned == [0, 1, 2]

    def test_all_zero_work(self):
        work = np.zeros(6, dtype=np.int64)
        parts = partition_block_rows(work, 4)
        assert len(parts) == 4
        assert_exact_cover(parts, work.size)

    def test_single_row_matrix(self):
        work = np.array([5], dtype=np.int64)
        parts = partition_block_rows(work, 4)
        assert len(parts) == 4
        assert_exact_cover(parts, 1)
        assert sum(len(p) for p in parts) == 1

    def test_empty_work_vector(self):
        parts = partition_block_rows(np.zeros(0, dtype=np.int64), 3)
        assert len(parts) == 3
        assert_exact_cover(parts, 0)

    def test_single_part_takes_everything(self):
        work = np.array([1, 2, 3, 4], dtype=np.int64)
        parts = partition_block_rows(work, 1)
        assert parts == [range(0, 4)]

    def test_nonpositive_parts_rejected(self):
        work = np.ones(4, dtype=np.int64)
        with pytest.raises(SimulationError):
            partition_block_rows(work, 0)
        with pytest.raises(SimulationError):
            partition_block_rows(work, -2)

    def test_balanced_on_uniform_work(self):
        work = np.full(64, 10, dtype=np.int64)
        parts = partition_block_rows(work, 4)
        assert_exact_cover(parts, 64)
        assert [len(p) for p in parts] == [16, 16, 16, 16]


class TestEmptyishBOperand:
    """Regression tests for the former ``b or a`` truthiness footgun.

    ``BBCMatrix`` defines ``__len__`` (block count), so an explicitly
    supplied *empty* B operand is falsy — ``b or a`` would silently
    compute SpGEMM work against A instead of the zero matrix the caller
    asked for.
    """

    @pytest.fixture
    def a(self):
        return BBCMatrix.from_coo(banded(64, 8, 0.6, seed=4))

    @pytest.fixture
    def empty_b(self):
        empty = BBCMatrix.from_coo(COOMatrix((64, 64), [], [], []))
        assert not empty  # the precondition that makes `b or a` wrong
        return empty

    def test_block_row_work_uses_the_supplied_empty_b(self, a, empty_b):
        work = block_row_work(a, "spgemm", empty_b)
        assert np.array_equal(work, np.zeros(a.block_rows, dtype=np.int64))
        # Sanity: defaulting to A (b=None) gives real work.
        assert block_row_work(a, "spgemm", None).sum() > 0

    def test_simulate_parallel_with_empty_b_does_no_work(self, a, empty_b):
        report = simulate_parallel("spgemm", a, UniSTC, n_cores=2, b=empty_b)
        assert report.wall_cycles == 0
        assert report.total_cycles == 0

    def test_traffic_reads_the_supplied_empty_b(self, a, empty_b):
        traffic = kernel_traffic_bytes("spgemm", a, b=empty_b)
        assert traffic["read_b"] == float(empty_b.storage_bytes())
        assert traffic["read_b"] < float(a.storage_bytes())

    def test_spgemm_output_nnz_with_empty_b_is_zero(self, a, empty_b):
        assert spgemm_output_nnz(a, empty_b) == 0
        assert spgemm_output_nnz(a, None) > 0

    def test_non_empty_b_still_used(self, a):
        b = BBCMatrix.from_coo(banded(64, 48, 0.6, seed=9))
        work_b = block_row_work(a, "spgemm", b)
        work_a = block_row_work(a, "spgemm", None)
        assert work_b.sum() != work_a.sum()

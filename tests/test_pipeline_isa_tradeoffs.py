"""Tests for the pipeline model, UWMMA ISA and the Table IV trade-offs."""

import pytest

from repro.arch.config import UniSTCConfig
from repro.arch.isa import (
    PTX_MAX_FP64_OPERANDS,
    UWMMA,
    instruction_sequence,
    synchronous_cycles,
    validate_register_pressure,
)
from repro.arch.pipeline import PIPELINE_STAGES, CoreState, UniSTCPipeline
from repro.arch.tradeoffs import best_tile_size, evaluate_tile_size, table_iv
from repro.errors import SimulationError


class TestPipeline:
    @pytest.fixture
    def pipe(self):
        return UniSTCPipeline(UniSTCConfig())

    def test_three_stages(self):
        assert PIPELINE_STAGES == 3

    def test_latency_adds_fill(self, pipe):
        assert pipe.latency_cycles(10) == 12

    def test_latency_of_empty_task(self, pipe):
        assert pipe.latency_cycles(0) == 1

    def test_latency_rejects_negative(self, pipe):
        with pytest.raises(SimulationError):
            pipe.latency_cycles(-1)

    def test_throughput_has_no_fill(self, pipe):
        assert pipe.throughput_cycles(10) == 10
        assert pipe.throughput_cycles(0) == 1

    def test_lifecycle_states(self, pipe):
        trace = pipe.lifecycle(exec_cycles=3)
        assert trace.states[0] == CoreState.IDLE
        assert CoreState.BUSY in trace.states
        assert CoreState.READY in trace.states
        assert trace.states[-1] == CoreState.IDLE

    def test_lifecycle_stalls_while_busy(self, pipe):
        trace = pipe.lifecycle(exec_cycles=2, queue_fill_cycles=3)
        assert trace.stall_cycles == 3


class TestISA:
    def test_table_v_opcodes_present(self):
        for opcode in (
            "stc.load.meta_mv", "stc.load.meta_mm", "stc.load.a",
            "stc.task_gen.mv", "stc.task_gen.mm",
            "stc.numeric.mv", "stc.numeric.mm",
        ):
            assert opcode in UWMMA

    def test_table_v_cycle_bounds(self):
        assert UWMMA["stc.load.a"].min_cycles == 2
        assert UWMMA["stc.task_gen.mv"].max_cycles == 4
        assert UWMMA["stc.task_gen.mm"].max_cycles == 8
        assert UWMMA["stc.numeric.mv"].max_cycles == 8
        assert UWMMA["stc.numeric.mm"].max_cycles == 64

    def test_cycles_clamped(self):
        inst = UWMMA["stc.numeric.mm"]
        assert inst.cycles_for(0) == 1
        assert inst.cycles_for(100) == 64
        assert inst.cycles_for(17) == 17

    def test_sequence_vector_kernel(self):
        seq = instruction_sequence("spmv", exec_cycles=4)
        opcodes = [op for op, _ in seq]
        assert "stc.load.meta_mv" in opcodes
        assert "stc.numeric.mv" in opcodes
        assert not any("mm" in op.rsplit(".", 1)[-1] for op in opcodes)

    def test_sequence_matrix_kernel(self):
        seq = instruction_sequence("spgemm", exec_cycles=40)
        assert ("stc.numeric.mm", 40) in seq

    def test_sequence_rejects_unknown(self):
        with pytest.raises(SimulationError):
            instruction_sequence("gemv", 1)

    def test_task_gen_is_asynchronous(self):
        seq = instruction_sequence("spmm", exec_cycles=8)
        sync = synchronous_cycles(seq)
        total = sum(c for _, c in seq)
        assert sync < total

    def test_register_pressure(self):
        assert validate_register_pressure()
        assert PTX_MAX_FP64_OPERANDS == 20


class TestTableIV:
    def test_rows(self):
        rows = table_iv()
        assert [r.tile for r in rows] == [2, 4, 8]

    def test_2x2x2_needs_too_many_dpgs(self):
        row = evaluate_tile_size(2)
        assert row.dpgs_to_saturate == (32, 64)
        assert not row.dpg_count_reasonable

    def test_4x4x4_is_balanced(self):
        row = evaluate_tile_size(4)
        assert row.cycles_per_t3 == 1
        assert row.dpgs_to_saturate == (8, 16)
        assert row.dpg_count_reasonable
        assert row.meets_timing

    def test_8x8x8_misses_timing(self):
        row = evaluate_tile_size(8)
        assert row.cycles_per_t3 >= 2
        assert row.dpgs_to_saturate == (2, 4)
        assert not row.meets_timing

    def test_network_scales(self):
        assert evaluate_tile_size(2).nonzero_network_scale == (4, 4)
        assert evaluate_tile_size(4).nonzero_network_scale == (16, 16)
        assert evaluate_tile_size(8).nonzero_network_scale == (64, 64)

    def test_best_is_four(self):
        """Table IV's conclusion: 4x4x4 wins at the 64-MAC budget."""
        assert best_tile_size(64) == 4

    def test_rejects_indivisible(self):
        with pytest.raises(ValueError):
            evaluate_tile_size(3)


class TestTableIVWiderMACBudgets:
    """FP32 (128 MACs) and FP16 (256 MACs) budgets from §IV-A scaling."""

    def test_rows_at_128(self):
        rows = table_iv(macs=128)
        assert [(r.tile, r.cycles_per_t3, r.dpgs_to_saturate) for r in rows] == [
            (2, 1, (64, 128)),
            (4, 1, (16, 32)),
            (8, 4, (4, 8)),
        ]

    def test_rows_at_256(self):
        rows = table_iv(macs=256)
        assert [(r.tile, r.cycles_per_t3, r.dpgs_to_saturate) for r in rows] == [
            (2, 1, (128, 256)),
            (4, 1, (32, 64)),
            (8, 2, (8, 16)),
        ]

    def test_best_tile_stays_four_across_budgets(self):
        # The paper keeps the 4x4x4 T3 task at every precision; widening
        # the MAC budget must not flip the selection.
        assert best_tile_size(128) == 4
        assert best_tile_size(256) == 4

    def test_wide_budgets_leave_dpg_range(self):
        # At 128+ MACs no tile saturates within the 4-16 DPG comfort
        # band, which is exactly why best_tile_size falls back to the
        # timing-feasible candidates instead of raising.
        assert not any(r.dpg_count_reasonable and r.meets_timing
                       for r in table_iv(macs=256))
        assert best_tile_size(256) == 4

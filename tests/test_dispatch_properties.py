"""Hypothesis property tests on the TMS dispatcher and engine weights."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.arch.config import UniSTCConfig
from repro.arch.tms import ORDERINGS, TileMultiplyScheduler
from repro.arch.unistc import UniSTC
from repro.sim.engine import clear_cache, simulate_tasks

from tests.conftest import make_block_task


@st.composite
def product_arrays(draw):
    """Random T3 product arrays: per-layer occupancy and magnitudes."""
    seed = draw(st.integers(0, 10_000))
    density = draw(st.floats(0.05, 1.0))
    rng = np.random.default_rng(seed)
    products = (rng.random((4, 4, 4)) < density) * rng.integers(1, 65, size=(4, 4, 4))
    return products.astype(np.int64)


class TestDispatchProperties:
    @given(product_arrays(), st.sampled_from(ORDERINGS))
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_capacity(self, products, ordering):
        tms = TileMultiplyScheduler(UniSTCConfig())
        outcome = tms.schedule(products, ordering)
        assert outcome.total_products == int(products.sum())
        for cyc in outcome.cycles:
            assert cyc.products <= 64
            assert cyc.tasks <= 8

    @given(product_arrays())
    @settings(max_examples=40, deadline=None)
    def test_no_coscheduled_output_conflicts(self, products):
        """Within one cycle, dispatched tasks never share an output tile."""
        tms = TileMultiplyScheduler(UniSTCConfig())
        layers = tms.generate_tasks(products)
        ordered = tms.order_tasks(layers, "dot")  # most conflict-prone order
        # Re-run dispatch manually to inspect per-cycle output sets.
        from collections import deque

        cfg = tms.config
        pending = deque(ordered)
        while pending:
            chosen = []
            used = set()
            skipped = []
            total = 0
            while pending and len(chosen) < cfg.num_dpgs:
                t = pending.popleft()
                if total + t.products > cfg.macs:
                    pending.appendleft(t)
                    break
                if t.output_tile in used:
                    skipped.append(t)
                    if len(skipped) >= cfg.num_dpgs:
                        break
                    continue
                chosen.append(t)
                used.add(t.output_tile)
                total += t.products
            for t in reversed(skipped):
                pending.appendleft(t)
            assert len(used) == len(chosen)
            assert chosen  # progress guaranteed

    @given(product_arrays())
    @settings(max_examples=40, deadline=None)
    def test_dispatch_deterministic(self, products):
        tms = TileMultiplyScheduler(UniSTCConfig())
        a = tms.schedule(products)
        b = tms.schedule(products)
        assert a.total_cycles == b.total_cycles
        assert a.conflict_cycles == b.conflict_cycles

    @given(product_arrays())
    @settings(max_examples=30, deadline=None)
    def test_cycles_bounded(self, products):
        """Cycles never exceed the task count (>= 1 task per cycle) and
        never beat the capacity bound."""
        tms = TileMultiplyScheduler(UniSTCConfig())
        outcome = tms.schedule(products)
        n_tasks = int((products > 0).sum())
        total = int(products.sum())
        if n_tasks:
            assert -(-total // 64) <= outcome.total_cycles <= n_tasks


class TestEngineWeightProperties:
    @given(st.integers(1, 9), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_weight_linearity(self, weight, seed):
        from repro.arch.tasks import T1Task

        base = make_block_task(0.3, 0.3, seed)
        weighted = T1Task(base.a_bits, base.b_bits, n=base.n, weight=weight)
        uni = UniSTC()
        clear_cache()
        single = simulate_tasks(uni, [base])
        clear_cache()
        many = simulate_tasks(uni, [weighted])
        assert many.cycles == weight * single.cycles
        assert many.products == weight * single.products
        assert many.util_hist.cycles == weight * single.util_hist.cycles

"""Tests for the AMG solver."""

import numpy as np
import pytest

from repro.apps.amg import AMGSolver, aggregate, strength_graph, tentative_prolongator
from repro.errors import ConvergenceError, ShapeError
from repro.formats.csr import CSRMatrix
from repro.workloads.synthetic import poisson2d


@pytest.fixture(scope="module")
def poisson():
    return CSRMatrix.from_coo(poisson2d(16))


@pytest.fixture(scope="module")
def solver(poisson):
    return AMGSolver(poisson)


class TestComponents:
    def test_strength_graph_keeps_diagonal(self, poisson):
        s = strength_graph(poisson, theta=0.9)
        assert np.all(s.diagonal() != 0)

    def test_strength_graph_filters(self, poisson):
        loose = strength_graph(poisson, theta=0.01)
        tight = strength_graph(poisson, theta=0.9)
        assert tight.nnz <= loose.nnz

    def test_aggregate_covers_all_nodes(self, poisson):
        s = strength_graph(poisson)
        agg, count = aggregate(s)
        assert (agg >= 0).all()
        assert agg.max() == count - 1
        assert count < poisson.shape[0]

    def test_tentative_prolongator_partition(self, poisson):
        s = strength_graph(poisson)
        agg, count = aggregate(s)
        p = tentative_prolongator(agg, count)
        assert p.shape == (poisson.shape[0], count)
        assert (p.row_nnz() == 1).all()  # each fine node in one aggregate


class TestHierarchy:
    def test_levels_shrink(self, solver):
        sizes = [level.a.shape[0] for level in solver.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert len(sizes) >= 2

    def test_grid_complexity_reasonable(self, solver):
        assert 1.0 < solver.grid_complexity() < 3.0

    def test_prolongators_link_levels(self, solver):
        for fine, coarse in zip(solver.levels, solver.levels[1:]):
            assert fine.p.shape == (fine.a.shape[0], coarse.a.shape[0])
            assert fine.r.shape == (coarse.a.shape[0], fine.a.shape[0])

    def test_galerkin_product_correct(self, solver):
        """A_c must equal P^T A P exactly."""
        fine = solver.levels[0]
        coarse = solver.levels[1]
        expected = fine.r.to_dense() @ fine.a.to_dense() @ fine.p.to_dense()
        assert np.allclose(coarse.a.to_dense(), expected)

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            AMGSolver(CSRMatrix.empty((4, 5)))

    def test_rejects_zero_diagonal(self):
        bad = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ConvergenceError):
            AMGSolver(bad)

    def test_unsmoothed_variant(self, poisson):
        plain = AMGSolver(poisson, smooth_prolongator=False)
        b = np.ones(poisson.shape[0])
        result = plain.solve(b, max_iterations=120)
        assert result.residuals[-1] < result.residuals[0]


class TestSolve:
    def test_converges_on_poisson(self, solver, poisson):
        rng = np.random.default_rng(0)
        b = rng.random(poisson.shape[0])
        result = solver.solve(b)
        assert result.converged
        assert np.allclose(poisson.to_dense() @ result.solution, b, atol=1e-6)

    def test_residuals_monotone_overall(self, solver, poisson):
        b = np.ones(poisson.shape[0])
        result = solver.solve(b)
        assert result.residuals[-1] < 1e-6 * result.residuals[0]

    def test_zero_rhs(self, solver, poisson):
        result = solver.solve(np.zeros(poisson.shape[0]))
        assert np.allclose(result.solution, 0.0)
        assert result.iterations == 0

    def test_warm_start(self, solver, poisson):
        b = np.ones(poisson.shape[0])
        exact = np.linalg.solve(poisson.to_dense(), b)
        result = solver.solve(b, x0=exact)
        assert result.iterations <= 1

    def test_rhs_shape_checked(self, solver):
        with pytest.raises(ShapeError):
            solver.solve(np.ones(3))

    def test_iteration_budget_respected(self, solver, poisson):
        b = np.ones(poisson.shape[0])
        result = solver.solve(b, tol=1e-300, max_iterations=3)
        assert result.iterations == 3


class TestTrace:
    def test_trace_records_both_kernels(self, poisson):
        fresh = AMGSolver(poisson)
        fresh.solve(np.ones(poisson.shape[0]), max_iterations=5)
        counts = fresh.trace.kernel_counts()
        assert counts.get("spgemm", 0) >= 3   # smoothing + 2 Galerkin per level
        assert counts.get("spmv", 0) > 10     # V-cycle smoothing/residuals

    def test_trace_replay_orders_stcs(self, poisson):
        """Fig. 21 premise: Uni-STC accelerates the AMG trace most."""
        from repro.arch.unistc import UniSTC
        from repro.baselines import DsSTC

        fresh = AMGSolver(poisson)
        fresh.solve(np.ones(poisson.shape[0]), max_iterations=2)
        ds = fresh.trace.replay_total_cycles(DsSTC())
        uni = fresh.trace.replay_total_cycles(UniSTC())
        assert uni < ds

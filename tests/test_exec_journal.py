"""Tests for the deterministic journal merge (repro.exec.journal)."""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.exec.journal import (
    fold_entries,
    merge_journals,
    read_raw_journal,
    strip_wallclock,
)
from repro.resilience.runner import JOURNAL_VERSION, journal_header

FP = "feedc0de00000000"


def entry(matrix="m0", stc="uni-stc", kernel="spmv", status="ok",
          cycles=100, elapsed=0.5, attempts=1):
    e = {
        "case": {"matrix": matrix, "stc": stc, "kernel": kernel},
        "status": status,
        "attempts": attempts,
        "elapsed_s": elapsed,
    }
    if status == "ok":
        e["report"] = {"cycles": cycles, "wall_s": 0.01,
                       "cache": {"hits": 3.0}}
    else:
        e["error"] = {"taxonomy": "simulation", "type": "SimulationError",
                      "message": "boom"}
    return e


def write_journal(path, entries, fingerprint=FP, version=None):
    header = journal_header(fingerprint, len(entries))
    if version is not None:
        header["version"] = version
    lines = [json.dumps(header)] + [json.dumps(e) for e in entries]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def read_entries(path):
    return [json.loads(line) for line in
            path.read_text().splitlines()[1:]]


class TestStripWallclock:
    def test_removes_host_timing_only(self):
        e = entry(elapsed=1.23)
        stripped = strip_wallclock(e)
        assert "elapsed_s" not in stripped
        assert "wall_s" not in stripped["report"]
        assert "cache" not in stripped["report"]
        assert stripped["report"]["cycles"] == 100
        assert stripped["attempts"] == 1  # a retried case is a real diff
        assert e["elapsed_s"] == 1.23     # the original is untouched

    def test_equal_modulo_wallclock(self):
        a = entry(elapsed=0.1)
        b = entry(elapsed=9.9)
        b["report"]["wall_s"] = 123.0
        assert strip_wallclock(a) == strip_wallclock(b)


class TestReadRawJournal:
    def test_interior_garbage_names_the_line(self, tmp_path):
        path = write_journal(tmp_path / "j", [entry("m0"), entry("m1")])
        lines = path.read_text().splitlines()
        lines[1] = '{"cor'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="line 2"):
            read_raw_journal(path, FP)

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = write_journal(tmp_path / "j", [entry("m0"), entry("m1")])
        text = path.read_text().rstrip("\n")
        path.write_text(text[:-10])
        _, entries = read_raw_journal(path, FP)
        assert len(entries) == 1

    def test_foreign_fingerprint_rejected(self, tmp_path):
        path = write_journal(tmp_path / "j", [entry()], fingerprint="other")
        with pytest.raises(CheckpointError, match="different sweep grid"):
            read_raw_journal(path, FP)


class TestFoldEntries:
    def test_identical_duplicates_dedupe(self):
        a, b = entry(elapsed=0.1), entry(elapsed=0.7)
        folded, stats = fold_entries([("w0", {"k": a}), ("w1", {"k": b})])
        assert folded == {"k": a}
        assert stats.deduplicated == 1

    def test_ok_supersedes_failed(self):
        failed, ok = entry(status="failed"), entry()
        folded, stats = fold_entries([("w0", {"k": failed}),
                                      ("w1", {"k": ok})])
        assert folded["k"]["status"] == "ok"
        assert stats.superseded == 1
        # ...regardless of source order.
        folded, _ = fold_entries([("w0", {"k": ok}), ("w1", {"k": failed})])
        assert folded["k"]["status"] == "ok"

    def test_conflicting_ok_outcomes_raise(self):
        a, b = entry(cycles=100), entry(cycles=999)
        with pytest.raises(CheckpointError, match="merge conflict"):
            fold_entries([("w0", {"k": a}), ("w1", {"k": b})])


class TestMergeJournals:
    def test_disjoint_sources_merge_in_canonical_order(self, tmp_path):
        keys = [("m0", "ds-stc"), ("m0", "uni-stc"),
                ("m1", "ds-stc"), ("m1", "uni-stc")]
        order = [f"{m}\x1fspmv\x1f{s}" for m, s in keys]
        # Workers journal their slices in shard order...
        w0 = write_journal(tmp_path / "w0.journal",
                           [entry(m, s) for m, s in keys[:2]])
        w1 = write_journal(tmp_path / "w1.journal",
                           [entry(m, s) for m, s in keys[2:]])
        target = tmp_path / "campaign.journal"
        stats = merge_journals(target, [w1, w0], FP, order=order)
        assert stats.appended == 4
        # ...and the campaign journal comes out in canonical case order
        # with the standard header, as a single-process run would write.
        merged = read_entries(target)
        assert [(e["case"]["matrix"], e["case"]["stc"]) for e in merged] == keys
        header = json.loads(target.read_text().splitlines()[0])
        assert header == journal_header(FP, 4)

    def test_merge_is_append_only_on_resume(self, tmp_path):
        order = [f"m{i}\x1fspmv\x1funi-stc" for i in range(3)]
        target = write_journal(tmp_path / "campaign.journal",
                               [entry("m0"), entry("m1")])
        before = target.read_text()
        w0 = write_journal(tmp_path / "w0.journal", [entry("m2")])
        stats = merge_journals(target, [w0], FP, order=order)
        assert stats.appended == 1
        assert target.read_text().startswith(before)  # prefix untouched

    def test_already_present_keys_are_not_rewritten(self, tmp_path):
        target = write_journal(tmp_path / "campaign.journal", [entry("m0")])
        w0 = write_journal(tmp_path / "w0.journal",
                           [entry("m0", elapsed=9.0)])
        stats = merge_journals(target, [w0], FP)
        assert stats.appended == 0
        assert stats.already_present == 1
        assert len(read_entries(target)) == 1

    def test_source_conflicting_with_target_raises(self, tmp_path):
        target = write_journal(tmp_path / "campaign.journal",
                               [entry("m0", cycles=100)])
        w0 = write_journal(tmp_path / "w0.journal",
                           [entry("m0", cycles=666)])
        with pytest.raises(CheckpointError, match="disagrees"):
            merge_journals(target, [w0], FP)

    def test_ok_retry_supersedes_journaled_failure(self, tmp_path):
        target = write_journal(tmp_path / "campaign.journal",
                               [entry("m0", status="failed")])
        w0 = write_journal(tmp_path / "w0.journal", [entry("m0")])
        merge_journals(target, [w0], FP)
        entries = read_entries(target)
        # Appended, not rewritten: last-wins on read, like the runner.
        assert [e["status"] for e in entries] == ["failed", "ok"]
        _, raw = read_raw_journal(target, FP)
        assert next(iter(raw.values()))["status"] == "ok"

    def test_mixed_version_source_headers_raise(self, tmp_path):
        w0 = write_journal(tmp_path / "w0.journal", [entry("m0")])
        w1 = write_journal(tmp_path / "w1.journal", [entry("m1")],
                           version=JOURNAL_VERSION + 1)
        with pytest.raises(CheckpointError, match="version mismatch"):
            merge_journals(tmp_path / "campaign.journal", [w0, w1], FP)

    def test_missing_empty_and_torn_header_sources_skipped(self, tmp_path):
        w0 = write_journal(tmp_path / "w0.journal", [entry("m0")])
        (tmp_path / "empty.journal").write_text("")
        (tmp_path / "torn.journal").write_text('{"journal": "repro.re')
        target = tmp_path / "campaign.journal"
        stats = merge_journals(
            target,
            [w0, tmp_path / "empty.journal", tmp_path / "torn.journal",
             tmp_path / "never-written.journal"],
            FP)
        assert stats.appended == 1

    def test_crash_mid_merge_leaves_target_intact(self, tmp_path, monkeypatch):
        """The write is atomic: a failed replace keeps the old bytes."""
        import repro.exec.journal as journal_mod

        target = write_journal(tmp_path / "campaign.journal", [entry("m0")])
        before = target.read_text()
        w0 = write_journal(tmp_path / "w0.journal", [entry("m1")])

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(journal_mod.os, "replace", boom)
        with pytest.raises(OSError):
            merge_journals(target, [w0], FP)
        assert target.read_text() == before

"""Batched task enumeration: parity with the per-object generators.

The batched builders (:mod:`repro.kernels.batched`) and the classic
generators (:mod:`repro.kernels.taskstream`) must describe the *same*
task stream — these tests pin that down task-for-task, through the
engine (full ``SimReport`` equality), and across the serial/parallel
split (a partitioned stream concatenates back to the serial one).
"""

import numpy as np
import pytest

from repro.arch.unistc import UniSTC
from repro.errors import ShapeError
from repro.formats.bbc import BBCMatrix
from repro.kernels import KERNELS
from repro.kernels.batched import (
    TaskBatch,
    coalesce,
    coalesce_raw,
    kernel_task_batches,
    spgemm_batch,
    spmm_batch,
    spmv_batch,
)
from repro.kernels.taskstream import kernel_tasks
from repro.kernels.vector import SparseVector
from repro.sim.blockcache import BlockCache
from repro.sim.engine import simulate_kernel
from repro.sim.parallel import block_row_work, partition_block_rows
from repro.workloads import synthetic


@pytest.fixture(scope="module")
def matrices():
    return {
        "banded": BBCMatrix.from_coo(synthetic.banded(160, 16, 0.5, seed=3)),
        "random": BBCMatrix.from_coo(synthetic.random_uniform(128, 128, 0.03, seed=4)),
        "arrow": BBCMatrix.from_coo(synthetic.long_rows(128, heavy_rows=2, seed=5)),
        "rect": BBCMatrix.from_coo(synthetic.random_uniform(96, 144, 0.05, seed=6)),
    }


def _operands(kernel, a, seed=0):
    if kernel == "spmspv":
        rng = np.random.default_rng(seed)
        dense = rng.random(a.shape[1]) * (rng.random(a.shape[1]) < 0.4)
        return {"x": SparseVector.from_dense(dense)}
    if kernel == "spmm":
        return {"b_cols": 40}  # forces a full panel *and* a tail panel
    if kernel == "spgemm":
        return {"b": BBCMatrix.from_coo(
            synthetic.random_uniform(a.shape[1], 112, 0.04, seed=seed + 9)
        )}
    return {}


def _task_multiset(tasks):
    """Order-free view of a task stream with weights aggregated."""
    agg = {}
    for t in tasks:
        key = (t.a_bits, t.b_bits, t.n)
        agg[key] = agg.get(key, 0) + t.weight
    return agg


class TestStreamParity:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_batched_equals_generator_stream(self, matrices, kernel):
        """Same weighted bitmap-pair multiset, matrix by matrix."""
        for name, a in matrices.items():
            operands = _operands(kernel, a)
            reference = _task_multiset(kernel_tasks(kernel, a, **operands))
            batched = {}
            for batch in kernel_task_batches(kernel, a, **operands):
                for key, weight in _task_multiset(batch.iter_tasks()).items():
                    batched[key] = batched.get(key, 0) + weight
            assert batched == reference, f"{kernel} stream differs on {name}"

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_coalesce_preserves_totals(self, matrices, kernel):
        for a in matrices.values():
            operands = _operands(kernel, a)
            for batch in kernel_task_batches(kernel, a, **operands):
                tasks, weights = coalesce(batch)
                assert sum(t.weight for t in tasks) == batch.total_tasks
                assert len({t.cache_key() for t in tasks}) == len(tasks)
                assert weights.sum() == batch.total_tasks

    def test_coalesce_raw_weights_exact_past_2_53(self):
        """Aggregate weights stay in the integer domain.

        ``np.bincount``'s float64 accumulator (the old implementation)
        silently rounds totals past 2^53; ``2^53 + 1`` collapses to
        ``2^53`` there, and ``astype(int64)`` then bakes the loss in."""
        big = (1 << 53) + 1
        a = np.zeros((1, 16, 16), dtype=bool)
        a[0, 0, 0] = True
        b = np.ones((1, 16, 16), dtype=bool)
        idx = np.zeros(2, dtype=np.int64)
        batch = TaskBatch(
            a_patterns=a, b_patterns=b, a_index=idx, b_index=idx,
            weights=np.array([big, 2], dtype=np.int64), n=16,
        )
        raw = coalesce_raw(batch)
        ((_, _, weight),) = raw.pairs
        assert isinstance(weight, int)
        assert weight == big + 2
        assert float(weight) != weight  # the exact total has no float64 form

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_serial_and_partitioned_streams_agree(self, matrices, kernel):
        """A row-partitioned stream concatenates to the serial stream.

        This is the single-enumeration guarantee: ``simulate_parallel``
        restricts the same builders by block-row range, so the parallel
        stream cannot drift from the serial one.
        """
        for a in matrices.values():
            operands = _operands(kernel, a)
            serial = list(kernel_tasks(kernel, a, **operands))
            work = block_row_work(
                a, kernel, operands.get("b") if kernel == "spgemm" else None
            )
            parts = partition_block_rows(work, 3)
            partitioned = [
                task
                for rows in parts
                for task in kernel_tasks(kernel, a, rows=rows, **operands)
            ]
            assert [
                (t.a_bits, t.b_bits, t.n, t.weight) for t in partitioned
            ] == [(t.a_bits, t.b_bits, t.n, t.weight) for t in serial]

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_partitioned_batches_cover_serial_stream(self, matrices, kernel):
        for a in matrices.values():
            operands = _operands(kernel, a)
            reference = _task_multiset(kernel_tasks(kernel, a, **operands))
            combined = {}
            work = block_row_work(
                a, kernel, operands.get("b") if kernel == "spgemm" else None
            )
            for rows in partition_block_rows(work, 4):
                for batch in kernel_task_batches(kernel, a, rows=rows, **operands):
                    for key, w in _task_multiset(batch.iter_tasks()).items():
                        combined[key] = combined.get(key, 0) + w
            assert combined == reference


class TestEngineParity:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_batched_and_legacy_reports_match(self, matrices, kernel):
        """Full SimReport equality: cycles, products, tasks, histogram,
        counters, and energy all agree between the engine paths."""
        for a in matrices.values():
            operands = _operands(kernel, a)
            legacy = simulate_kernel(
                kernel, a, UniSTC(), batched=False, cache=BlockCache(), **operands
            )
            fast = simulate_kernel(
                kernel, a, UniSTC(), batched=True, cache=BlockCache(), **operands
            )
            assert fast.cycles == legacy.cycles
            assert fast.products == legacy.products
            assert fast.t1_tasks == legacy.t1_tasks
            assert np.array_equal(fast.util_hist.bins, legacy.util_hist.bins)
            legacy_counters = legacy.counters.as_dict()
            fast_counters = fast.counters.as_dict()
            assert set(fast_counters) == set(legacy_counters)
            for action, count in legacy_counters.items():
                assert fast_counters[action] == pytest.approx(count)
            assert fast.energy_pj == pytest.approx(legacy.energy_pj)

    def test_empty_matrix_all_kernels(self):
        empty = BBCMatrix.from_coo(synthetic.random_uniform(64, 64, 0.0, seed=1))
        for kernel in KERNELS:
            operands = _operands(kernel, empty)
            report = simulate_kernel(
                kernel, empty, UniSTC(), cache=BlockCache(), **operands
            )
            assert report.cycles == 0
            assert report.t1_tasks == 0


class TestRowRanges:
    def test_rejects_non_contiguous_range(self, matrices):
        a = matrices["banded"]
        with pytest.raises(ShapeError):
            spmv_batch(a, rows=range(0, a.block_rows, 2))
        with pytest.raises(ShapeError):
            list(kernel_tasks("spmv", a, rows=range(0, a.block_rows, 2)))

    def test_rejects_out_of_bounds_range(self, matrices):
        a = matrices["banded"]
        with pytest.raises(ShapeError):
            spmv_batch(a, rows=range(0, a.block_rows + 1))

    def test_empty_range_is_empty_stream(self, matrices):
        a = matrices["banded"]
        batch = spmv_batch(a, rows=range(3, 3))
        assert len(batch) == 0 and batch.total_tasks == 0
        assert list(kernel_tasks("spmv", a, rows=range(3, 3))) == []


class TestValidation:
    def test_spmm_rejects_zero_columns(self, matrices):
        with pytest.raises(ShapeError):
            spmm_batch(matrices["banded"], b_cols=0)

    def test_spgemm_inner_mismatch(self, matrices):
        with pytest.raises(ShapeError):
            spgemm_batch(matrices["banded"], b=matrices["rect"])

    def test_spmspv_requires_x(self, matrices):
        with pytest.raises(ShapeError):
            kernel_task_batches("spmspv", matrices["banded"])

    def test_unknown_kernel(self, matrices):
        with pytest.raises(ShapeError):
            kernel_task_batches("gemm", matrices["banded"])

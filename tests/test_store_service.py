"""The memoising simulation service (:mod:`repro.store.service`).

Exercises the HTTP surface end-to-end over a real socket (loopback,
OS-assigned port): run execution, memoisation, single-flight collapse
of concurrent identical requests, the stats/metrics/health endpoints,
and request validation.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro import obs
from repro.errors import FormatError
from repro.sim import engine
from repro.store import SimulationService
from repro.store.service import _canonical_params

RUN_BODY = {
    "matrices": ["band:64:8:0.4"],
    "stcs": ["uni-stc"],
    "kernels": ["spmv"],
    "seed": 0,
}


def _counter(metrics, name):
    """Total of one counter across label series in a metrics snapshot."""
    return sum(entry["value"] for entry in metrics["counters"].get(name, []))


def _get(service, path):
    url = f"http://{service.host}:{service.port}{path}"
    with urllib.request.urlopen(url, timeout=30) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


def _post(service, path, body):
    url = f"http://{service.host}:{service.port}{path}"
    raw = body if isinstance(body, bytes) else json.dumps(body).encode()
    req = urllib.request.Request(
        url, data=raw, headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode("utf-8"))


@pytest.fixture()
def service(tmp_path):
    engine.clear_cache()
    engine.unbind_store()
    obs.enable(fresh=True)
    svc = SimulationService(tmp_path / "store", port=0).start()
    yield svc
    svc.close()
    engine.unbind_store()
    obs.disable()
    engine.clear_cache()


class TestRun:
    def test_run_executes_and_memoises(self, service):
        status, first = _post(service, "/v1/run", RUN_BODY)
        assert status == 200
        assert first["memoised"] is False
        assert first["kind"] == "repro.serve.run"
        assert len(first["cases"]) == 1
        case = first["cases"][0]
        assert case["kernel"] == "spmv" and case["stc"] == "uni-stc"
        assert case["report"]["cycles"] > 0
        # Ephemeral fields are stripped so replays are byte-identical.
        assert "wall_s" not in case["report"]
        assert "cache" not in case["report"]
        assert service.executions == 1

        status, second = _post(service, "/v1/run", RUN_BODY)
        assert status == 200
        assert second["memoised"] is True
        assert service.executions == 1  # no re-simulation
        assert {k: v for k, v in first.items() if k != "memoised"} \
            == {k: v for k, v in second.items() if k != "memoised"}

    def test_equivalent_requests_share_a_fingerprint(self, service):
        _post(service, "/v1/run", RUN_BODY)
        # Same request modulo list order and duplicates: canonicalised
        # to the same fingerprint, so it replays.
        scrambled = dict(RUN_BODY, kernels=["spmv", "spmv"])
        status, body = _post(service, "/v1/run", scrambled)
        assert status == 200 and body["memoised"] is True
        assert service.executions == 1

    def test_concurrent_identical_requests_single_flight(self, service):
        n = 6
        with ThreadPoolExecutor(max_workers=n) as pool:
            results = list(pool.map(
                lambda _: _post(service, "/v1/run", RUN_BODY), range(n)))
        assert all(status == 200 for status, _ in results)
        # Exactly one execution; every body identical modulo the
        # memoised flag.
        assert service.executions == 1
        bodies = [{k: v for k, v in body.items() if k != "memoised"}
                  for _, body in results]
        assert all(body == bodies[0] for body in bodies)
        assert sum(1 for _, b in results if not b["memoised"]) == 1

    def test_concurrent_distinct_requests(self, service):
        # Distinct fingerprints bypass single-flight entirely, so the
        # handler threads race on the one shared ResultStore handle
        # (insert offsets, reader seek/read) — this must not corrupt
        # the store or 500.
        specs = [f"band:{n}:8:0.4" for n in (48, 56, 64, 72, 80, 96)]
        bodies = [dict(RUN_BODY, matrices=[spec]) for spec in specs]
        with ThreadPoolExecutor(max_workers=len(bodies)) as pool:
            results = list(pool.map(
                lambda body: _post(service, "/v1/run", body), bodies))
        assert all(status == 200 for status, _ in results)
        assert service.executions == len(bodies)
        for (_, body), spec in zip(results, specs):
            assert body["memoised"] is False
            assert [case["matrix"] for case in body["cases"]] == [spec]
        # Every record written under contention reads back clean.
        assert len(service.store) > 0
        assert service.store.verify()["errors"] == []
        # The store stays bound as the engine's second tier throughout
        # (per-request binding used to race and unbind it mid-sweep).
        assert engine.bound_store() is service.store

    def test_store_binding_scoped_to_service_lifetime(self, tmp_path):
        engine.unbind_store()
        svc = SimulationService(tmp_path / "store", port=0).start()
        try:
            assert engine.bound_store() is svc.store
        finally:
            svc.close()
        assert engine.bound_store() is None

    def test_second_execution_hits_the_store(self, service):
        _post(service, "/v1/run", RUN_BODY)
        # A different workload axis forces a new execution, but the
        # same (matrix, stc) blocks replay from the store tier.
        engine.clear_cache()  # drop the process LRU: force store reads
        status, body = _post(service, "/v1/run",
                             dict(RUN_BODY, kernels=["spmv", "spmspv"]))
        assert status == 200 and body["memoised"] is False
        assert body["store"]["hits"] > 0
        _, metrics = _get(service, "/v1/metrics")
        assert _counter(metrics, "store.hits") > 0


class TestEndpoints:
    def test_healthz(self, service):
        status, body = _get(service, "/healthz")
        assert status == 200 and body["ok"] is True

    def test_stats_reflects_memo_and_store(self, service):
        _post(service, "/v1/run", RUN_BODY)
        status, stats = _get(service, "/v1/stats")
        assert status == 200
        assert stats["kind"] == "repro.store"
        assert stats["records"] > 0
        assert stats["memoised_runs"] == 1
        assert stats["executions"] == 1

    def test_metrics_snapshot(self, service):
        _post(service, "/v1/run", RUN_BODY)
        status, metrics = _get(service, "/v1/metrics")
        assert status == 200
        assert "counters" in metrics
        assert _counter(metrics, "store.appends") > 0

    def test_unknown_paths_404(self, service):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(service, "/nope")
        assert excinfo.value.code == 404
        status, _ = _post(service, "/v1/nope", RUN_BODY)
        assert status == 404


class TestValidation:
    def test_bad_json_is_400(self, service):
        status, body = _post(service, "/v1/run", b"{not json")
        assert status == 400 and "JSON" in body["error"]

    def test_missing_fields_are_400(self, service):
        status, body = _post(service, "/v1/run", {"matrices": ["band:64:8:0.4"]})
        assert status == 400 and "stcs" in body["error"]

    def test_bad_matrix_spec_is_400(self, service):
        status, body = _post(
            service, "/v1/run", dict(RUN_BODY, matrices=["nope:1:2"]))
        assert status == 400 and "bad run request" in body["error"]
        assert service.executions == 0

    def test_canonical_params_normalises(self):
        params = _canonical_params({
            "matrices": ["b", "a", "b"], "stcs": ["uni-stc"],
            "kernels": ["spmv"], "seed": 3,
        })
        assert params["matrices"] == ["a", "b"]
        assert params["seed"] == 3

    def test_canonical_params_rejects_bool_seed(self):
        with pytest.raises(FormatError, match="seed"):
            _canonical_params({
                "matrices": ["m"], "stcs": ["s"], "kernels": ["k"],
                "seed": True,
            })

    def test_canonical_params_rejects_empty_lists(self):
        with pytest.raises(FormatError, match="kernels"):
            _canonical_params({
                "matrices": ["m"], "stcs": ["s"], "kernels": [], "seed": 0,
            })


class TestLifecycle:
    def test_max_requests_self_termination(self, tmp_path):
        svc = SimulationService(tmp_path / "store", port=0, max_requests=2)
        svc.start()
        try:
            _get(svc, "/healthz")
            _get(svc, "/healthz")
            assert svc._done.wait(timeout=10)
            assert svc.requests_handled == 2
        finally:
            svc.close()

    def test_context_manager_closes(self, tmp_path):
        with SimulationService(tmp_path / "store", port=0).start() as svc:
            status, _ = _get(svc, "/healthz")
            assert status == 200

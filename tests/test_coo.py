"""Tests for the COO container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix


class TestConstruction:
    def test_empty(self):
        m = COOMatrix((3, 4), [], [], [])
        assert m.nnz == 0
        assert m.to_dense().shape == (3, 4)

    def test_basic(self):
        m = COOMatrix((2, 2), [0, 1], [1, 0], [2.0, 3.0])
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == 2.0

    def test_duplicates_summed(self):
        m = COOMatrix((2, 2), [0, 0, 0], [1, 1, 0], [2.0, 3.0, 1.0])
        assert m.nnz == 2
        assert m.to_dense()[0, 1] == 5.0

    def test_duplicates_cancelling_dropped(self):
        m = COOMatrix((2, 2), [0, 0], [1, 1], [2.0, -2.0])
        assert m.nnz == 0

    def test_explicit_zero_dropped(self):
        m = COOMatrix((2, 2), [0], [0], [0.0])
        assert m.nnz == 0

    def test_sorted_by_row_then_col(self):
        m = COOMatrix((3, 3), [2, 0, 1, 0], [0, 2, 1, 0], [1, 2, 3, 4])
        assert m.rows.tolist() == [0, 0, 1, 2]
        assert m.cols.tolist() == [0, 2, 1, 0]

    def test_row_out_of_bounds(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), [2], [0], [1.0])

    def test_col_out_of_bounds(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), [0], [5], [1.0])

    def test_negative_index(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), [-1], [0], [1.0])

    def test_mismatched_lengths(self):
        with pytest.raises(FormatError):
            COOMatrix((2, 2), [0, 1], [0], [1.0])

    def test_negative_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix((-1, 2), [], [], [])


class TestDenseRoundtrip:
    def test_from_dense_drops_zeros(self):
        dense = np.array([[0.0, 1.0], [2.0, 0.0]])
        m = COOMatrix.from_dense(dense)
        assert m.nnz == 2
        assert np.array_equal(m.to_dense(), dense)

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ShapeError):
            COOMatrix.from_dense(np.ones(4))

    @given(st.integers(1, 20), st.integers(1, 20), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_random(self, m, n, seed):
        rng = np.random.default_rng(seed)
        dense = rng.random((m, n)) * (rng.random((m, n)) < 0.3)
        assert np.allclose(COOMatrix.from_dense(dense).to_dense(), dense)


class TestOps:
    def test_transpose(self, small_dense):
        m = COOMatrix.from_dense(small_dense)
        assert np.allclose(m.transpose().to_dense(), small_dense.T)

    def test_transpose_involution(self, small_coo):
        assert small_coo.transpose().transpose() == small_coo

    def test_scaled(self, small_coo):
        assert np.allclose(small_coo.scaled(2.0).to_dense(), 2 * small_coo.to_dense())

    def test_scaled_by_zero_empties(self, small_coo):
        assert small_coo.scaled(0.0).nnz == 0

    def test_density(self):
        m = COOMatrix((4, 4), [0, 1], [0, 1], [1.0, 1.0])
        assert m.density() == 2 / 16

    def test_density_empty_shape(self):
        assert COOMatrix((0, 0), [], [], []).density() == 0.0

    def test_equality(self, small_coo):
        clone = COOMatrix(small_coo.shape, small_coo.rows, small_coo.cols, small_coo.vals)
        assert small_coo == clone

    def test_not_hashable(self, small_coo):
        with pytest.raises(TypeError):
            hash(small_coo)

    def test_repr(self, small_coo):
        assert "COOMatrix" in repr(small_coo)

"""Tests for the sparse vector container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError, ShapeError
from repro.kernels.vector import SparseVector, dense_segment_mask


class TestConstruction:
    def test_empty(self):
        v = SparseVector(10, [], [])
        assert v.nnz == 0
        assert v.to_dense().tolist() == [0.0] * 10

    def test_basic(self):
        v = SparseVector(5, [3, 1], [2.0, 1.0])
        assert v.indices.tolist() == [1, 3]
        assert v.values.tolist() == [1.0, 2.0]

    def test_duplicates_summed(self):
        v = SparseVector(5, [2, 2], [1.0, 3.0])
        assert v.nnz == 1
        assert v.to_dense()[2] == 4.0

    def test_cancelling_duplicates_dropped(self):
        v = SparseVector(5, [2, 2], [1.0, -1.0])
        assert v.nnz == 0

    def test_out_of_bounds(self):
        with pytest.raises(FormatError):
            SparseVector(3, [3], [1.0])

    def test_mismatched_lengths(self):
        with pytest.raises(FormatError):
            SparseVector(3, [0, 1], [1.0])

    def test_density(self):
        assert SparseVector(4, [0], [1.0]).density() == 0.25

    def test_density_zero_length(self):
        assert SparseVector(0, [], []).density() == 0.0


class TestDenseRoundtrip:
    @given(st.integers(1, 100), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, n, seed):
        rng = np.random.default_rng(seed)
        dense = rng.random(n) * (rng.random(n) < 0.4)
        assert np.allclose(SparseVector.from_dense(dense).to_dense(), dense)

    def test_from_dense_rejects_2d(self):
        with pytest.raises(ShapeError):
            SparseVector.from_dense(np.ones((2, 2)))


class TestSegments:
    def test_segment_mask(self):
        v = SparseVector(40, [0, 17, 39], [1.0, 2.0, 3.0])
        assert v.segment_mask(0)[0]
        assert v.segment_mask(1)[1]       # index 17 -> segment 1, offset 1
        assert v.segment_mask(2)[7]       # index 39 -> segment 2, offset 7
        assert not v.segment_mask(1)[0]

    def test_segment_values(self):
        v = SparseVector(40, [17], [2.5])
        seg = v.segment_values(1)
        assert seg[1] == 2.5
        assert seg.sum() == 2.5

    def test_nonempty_segments(self):
        v = SparseVector(64, [0, 1, 50], [1.0, 1.0, 1.0])
        assert v.nonempty_segments().tolist() == [0, 3]

    def test_segments_reassemble(self):
        rng = np.random.default_rng(7)
        dense = rng.random(70) * (rng.random(70) < 0.5)
        v = SparseVector.from_dense(dense)
        rebuilt = np.concatenate([v.segment_values(s) for s in range(5)])
        assert np.allclose(rebuilt[:70], dense)

    def test_dense_segment_mask_full(self):
        assert dense_segment_mask(64, 1).all()

    def test_dense_segment_mask_padding(self):
        mask = dense_segment_mask(20, 1)
        assert mask[:4].all() and not mask[4:].any()

    def test_dense_segment_mask_past_end(self):
        assert not dense_segment_mask(16, 2).any()

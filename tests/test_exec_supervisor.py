"""Integration tests for the campaign executor (repro.exec.supervisor).

These spawn real ``repro worker`` subprocesses and inject failures
through the ``REPRO_WORKER_CHAOS`` hook, so they are slower than unit
tests but exercise the actual supervision machinery: crash respawn,
hard-kill deadlines, heartbeat-loss detection, poison bisection and
the deterministic journal join.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main
from repro.exec import CampaignExecutor, ExecPolicy, StcDef, strip_wallclock
from repro.exec.worker import CHAOS_ENV
from repro.obs.telemetry import check_status
from repro.registry import parse_matrix_spec
from repro.resilience.runner import ResilientRunner, RetryPolicy
from repro.sim import engine
from repro.sim.sweep import Sweep


@pytest.fixture(autouse=True)
def fresh_engine_cache():
    engine.clear_cache()
    yield
    engine.clear_cache()


@pytest.fixture
def metrics():
    obs.enable()
    yield obs.metrics()
    obs.disable()


MATRICES = {
    "m0": "band:48:4:0.5",
    "m1": "band:48:6:0.5",
    "m2": "band:48:8:0.5",
}


def make_executor(journal, matrices=MATRICES, policy=None, **kwargs):
    return CampaignExecutor(
        matrices=dict(matrices),
        stcs=[StcDef.plain("uni-stc")],
        kernels=["spmv"],
        journal_path=journal,
        policy=policy or ExecPolicy(),
        **kwargs,
    )


def normalised(journal):
    """(header, entries) with the wall-clock fields stripped."""
    lines = Path(journal).read_text(encoding="utf-8").splitlines()
    return (json.loads(lines[0]),
            [strip_wallclock(json.loads(line)) for line in lines[1:]])


def leaked_workers(fragment):
    """PIDs of live processes whose cmdline mentions ``fragment``."""
    pids = []
    for pid in Path("/proc").iterdir():
        if not pid.name.isdigit():
            continue
        try:
            cmdline = (pid / "cmdline").read_bytes()
        except OSError:
            continue
        if str(fragment).encode() in cmdline:
            pids.append(pid.name)
    return pids


class TestInProcessPath:
    def test_workers_zero_matches_a_direct_runner(self, tmp_path):
        """The degraded path is literally the plain ResilientRunner."""
        exec_journal = tmp_path / "exec.journal"
        summary = make_executor(exec_journal).run()
        assert summary.n_ok == len(MATRICES)

        direct_journal = tmp_path / "direct.journal"
        direct = ResilientRunner(
            sweep=Sweep.from_names(
                {n: parse_matrix_spec(s) for n, s in MATRICES.items()},
                ["uni-stc"], ["spmv"]),
            journal_path=direct_journal,
            retry=RetryPolicy(max_retries=1),
        ).run()
        assert [o.report.cycles for o in summary.outcomes] == \
            [o.report.cycles for o in direct.outcomes]
        assert normalised(exec_journal) == normalised(direct_journal)

    def test_popen_failure_degrades_to_in_process(self, tmp_path, monkeypatch):
        """No subprocess support at all still completes the campaign."""
        def no_subprocesses(*args, **kwargs):
            raise OSError("spawn forbidden")

        monkeypatch.setattr(subprocess, "Popen", no_subprocesses)
        journal = tmp_path / "campaign.journal"
        summary = make_executor(journal, policy=ExecPolicy(workers=2)).run()
        assert summary.n_ok == len(MATRICES)
        header, entries = normalised(journal)
        assert len(entries) == len(MATRICES)
        assert all(e["status"] == "ok" for e in entries)


class TestDistributedIdentity:
    def test_sharded_run_matches_single_process(self, tmp_path):
        """2 workers produce the same journal bytes modulo wall clock."""
        single = tmp_path / "single.journal"
        make_executor(single).run()

        sharded = tmp_path / "sharded.journal"
        summary = make_executor(
            sharded, policy=ExecPolicy(workers=2)).run()
        assert summary.n_ok == len(MATRICES)
        assert normalised(sharded) == normalised(single)

    def test_distributed_resume_skips_finished_cases(self, tmp_path):
        journal = tmp_path / "campaign.journal"
        make_executor(journal, policy=ExecPolicy(workers=2)).run()
        before = journal.read_text()

        summary = make_executor(journal, resume=True,
                                policy=ExecPolicy(workers=2)).run()
        assert summary.n_ok == len(MATRICES)
        assert all(o.resumed for o in summary.outcomes)
        assert journal.read_text() == before  # nothing re-ran, no appends


class TestCrashRecovery:
    def test_sigkilled_worker_resumes_with_zero_resimulation(
            self, tmp_path, monkeypatch, metrics):
        """A worker SIGKILLed mid-shard respawns and picks up where the
        journal left off: every case lands in the campaign journal
        exactly once, with exactly one attempt."""
        marker = tmp_path / "kill.marker"
        monkeypatch.setenv(CHAOS_ENV, f"kill:m1:{marker}")
        journal = tmp_path / "campaign.journal"
        summary = make_executor(journal, policy=ExecPolicy(workers=1)).run()

        assert marker.exists()  # the chaos actually fired
        assert summary.n_ok == len(MATRICES)
        _, entries = normalised(journal)
        keys = [tuple(e["case"].values()) for e in entries]
        assert len(keys) == len(set(keys)) == len(MATRICES)
        assert all(e["attempts"] == 1 for e in entries)
        assert metrics.counter("exec.worker_crashes").total >= 1

    def test_hung_case_is_hard_killed_bisected_and_quarantined(
            self, tmp_path, monkeypatch, metrics):
        """A case that hangs forever blows the shard deadline, gets its
        worker killed for real, and after bisection is journaled as a
        poison failure — while its shard-mates still complete."""
        monkeypatch.setenv(CHAOS_ENV, "hang:m0")
        journal = tmp_path / "campaign.journal"
        policy = ExecPolicy(workers=1, shard_timeout_s=2.5,
                            term_grace_s=0.5, max_shard_retries=0,
                            heartbeat_misses=0)
        summary = make_executor(
            journal, matrices={"m0": MATRICES["m0"], "m1": MATRICES["m1"]},
            policy=policy).run()

        by_matrix = {o.case.matrix_name: o for o in summary.outcomes}
        assert by_matrix["m1"].status == "ok"
        poisoned = by_matrix["m0"]
        assert poisoned.status == "failed"
        assert poisoned.failure.taxonomy == "poison"
        assert poisoned.failure.type == "WorkerCrashError"

        kills = metrics.counter("exec.worker_kills")
        assert any("deadline" in dict(key).get("reason", "")
                   for key in kills.series)
        assert metrics.counter("exec.shards_bisected").total == 1
        assert metrics.counter("exec.cases_quarantined").total == 1
        # The timed-out workers are dead, not leaked.
        assert leaked_workers(journal.name + ".d") == []

    def test_heartbeat_loss_is_detected_and_killed(
            self, tmp_path, monkeypatch, metrics):
        """A SIGSTOPped worker dodges SIGTERM but not the heartbeat
        watchdog's SIGKILL; the respawn finishes the shard."""
        marker = tmp_path / "stop.marker"
        monkeypatch.setenv(CHAOS_ENV, f"stop:m0:{marker}")
        journal = tmp_path / "campaign.journal"
        policy = ExecPolicy(workers=1, heartbeat_interval_s=0.2,
                            heartbeat_misses=10, term_grace_s=0.3)
        summary = make_executor(
            journal, matrices={"m0": MATRICES["m0"], "m1": MATRICES["m1"]},
            policy=policy).run()

        assert marker.exists()
        assert summary.n_ok == 2
        kills = metrics.counter("exec.worker_kills")
        assert any("heartbeat" in dict(key).get("reason", "")
                   for key in kills.series)
        assert metrics.counter("exec.worker_crashes").total >= 1
        assert leaked_workers(journal.name + ".d") == []


class TestTelemetry:
    """The streaming-telemetry contract across the process boundary."""

    #: Counters whose per-label values are simulation-deterministic —
    #: identical however the campaign was sharded, crashed or resumed.
    #: (Cache and exec.* counters legitimately differ after a respawn.)
    DETERMINISTIC = ("sim.t1_tasks", "sim.cycles")

    def deterministic_series(self, registry):
        return {
            name: dict(registry.counter(name).series)
            for name in self.DETERMINISTIC
        }

    def run_campaign(self, tmp_path, name, workers=2):
        journal = tmp_path / f"{name}.journal"
        obs.enable()   # fresh registry per run
        summary = make_executor(
            journal, policy=ExecPolicy(workers=workers,
                                       heartbeat_interval_s=0.2)).run()
        return journal, summary, obs.metrics()

    def test_status_json_is_written_and_validates(self, tmp_path, metrics):
        journal, summary, _ = self.run_campaign(tmp_path, "campaign")
        assert summary.n_ok == len(MATRICES)
        status_path = tmp_path / "campaign.journal.d" / "status.json"
        doc = check_status(json.loads(status_path.read_text()))
        assert doc["state"] == "done"
        assert doc["done"] == doc["total"] == len(MATRICES)
        assert sum(s["done"] for s in doc["shards"]) == len(MATRICES)
        assert all(s["phase"] in ("finished",) for s in doc["shards"])

    def test_crashed_worker_metrics_match_a_clean_run(
            self, tmp_path, monkeypatch, metrics):
        """The satellite fix: a SIGKILLed worker's streamed metrics fold
        in exactly — the deterministic counters come out identical to an
        uncrashed campaign's, per label set."""
        _, _, clean = self.run_campaign(tmp_path, "clean", workers=1)
        clean_series = self.deterministic_series(clean)
        assert any(clean_series.values())   # the comparison is not vacuous

        marker = tmp_path / "kill.marker"
        monkeypatch.setenv(CHAOS_ENV, f"kill:m1:{marker}")
        journal, summary, crashed = self.run_campaign(
            tmp_path, "crashed", workers=1)
        assert marker.exists() and summary.n_ok == len(MATRICES)
        assert crashed.counter("exec.worker_crashes").total >= 1
        assert self.deterministic_series(crashed) == clean_series

        doc = check_status(json.loads(
            (tmp_path / "crashed.journal.d" / "status.json").read_text()))
        assert sum(s["crashes"] for s in doc["shards"]) >= 1

    def test_stitched_trace_has_one_track_per_worker(
            self, tmp_path, metrics):
        journal, summary, _ = self.run_campaign(tmp_path, "traced")
        assert summary.n_ok == len(MATRICES)
        trace = obs.tracer().chrome_trace()
        events = trace["traceEvents"]
        worker_pids = {e["pid"] for e in events
                       if e["ph"] == "X" and e["pid"] != obs.tracer().pid}
        assert len(worker_pids) == 2
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert "supervisor" in names
        assert sum(1 for n in names if n.startswith("worker ")) == 2
        assert any(e["name"] == "exec.dispatch" for e in events)

    def test_repro_top_status_json_one_shot(self, tmp_path, metrics, capsys):
        journal, summary, _ = self.run_campaign(tmp_path, "campaign")
        assert summary.n_ok == len(MATRICES)
        assert main(["top", str(journal), "--status-json"]) == 0
        doc = check_status(json.loads(capsys.readouterr().out))
        assert doc["state"] == "done"
        assert doc["done"] == len(MATRICES)

    def test_repro_top_renders_a_table(self, tmp_path, metrics, capsys):
        journal, summary, _ = self.run_campaign(tmp_path, "campaign")
        assert main(["top", str(journal), "--once"]) == 0
        printed = capsys.readouterr().out
        assert "campaign" in printed and "shard" in printed
        assert "s0" in printed and "s1" in printed

    def test_no_telemetry_flag_suppresses_the_stream(self, tmp_path):
        journal = tmp_path / "campaign.journal"
        summary = make_executor(
            journal, policy=ExecPolicy(workers=2), telemetry=False).run()
        assert summary.n_ok == len(MATRICES)
        workdir = tmp_path / "campaign.journal.d"
        assert list(workdir.glob("*.telemetry.jsonl")) == []
        assert not (workdir / "status.json").exists()


class TestDseDistributed:
    def space(self):
        from repro.dse import DesignSpace

        return DesignSpace.build({"num_dpgs": [2, 4]},
                                 ["band:48:4:0.5"], ["spmv"])

    def campaign(self, journal, resume=False):
        from repro.dse import Campaign, make_strategy

        return Campaign(self.space(), make_strategy("grid"),
                        journal_path=journal, resume=resume,
                        exec_policy=ExecPolicy(workers=2))

    def test_resume_replays_with_zero_resimulation(self, tmp_path, metrics):
        journal = tmp_path / "dse.journal"
        first = self.campaign(journal).run()
        assert first.n_simulated > 0 and first.n_resumed == 0
        out1 = tmp_path / "frontier1.json"
        first.write_json(out1)

        obs.enable()  # fresh registry: count only the resumed run
        second = self.campaign(journal, resume=True).run()
        assert second.n_simulated == 0
        assert second.n_resumed == first.n_simulated
        assert obs.metrics().counter("dse.points_simulated").total == 0
        assert obs.metrics().counter("dse.points_resumed").total == \
            second.n_resumed

        out2 = tmp_path / "frontier2.json"
        second.write_json(out2)
        assert out2.read_bytes() == out1.read_bytes()

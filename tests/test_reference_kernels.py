"""Golden-kernel tests: CSR reference kernels against dense numpy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.formats import CSRMatrix
from repro.kernels import reference as ref
from repro.kernels.vector import SparseVector


def _random_sparse(rng, m, n, density=0.3):
    dense = rng.random((m, n)) * (rng.random((m, n)) < density)
    return dense, CSRMatrix.from_dense(dense)


class TestSpMV:
    def test_matches_numpy(self, rng):
        dense, csr = _random_sparse(rng, 30, 40)
        x = rng.random(40)
        assert np.allclose(ref.spmv(csr, x), dense @ x)

    def test_empty_matrix(self):
        csr = CSRMatrix.empty((3, 4))
        assert ref.spmv(csr, np.ones(4)).tolist() == [0.0, 0.0, 0.0]

    def test_shape_mismatch(self, small_csr):
        with pytest.raises(ShapeError):
            ref.spmv(small_csr, np.ones(small_csr.shape[1] + 1))

    def test_identity(self):
        x = np.arange(5, dtype=float)
        assert np.allclose(ref.spmv(CSRMatrix.identity(5), x), x)

    @given(st.integers(1, 20), st.integers(1, 20), st.integers(0, 200))
    @settings(max_examples=20, deadline=None)
    def test_random(self, m, n, seed):
        rng = np.random.default_rng(seed)
        dense, csr = _random_sparse(rng, m, n)
        x = rng.standard_normal(n)
        assert np.allclose(ref.spmv(csr, x), dense @ x)


class TestSpMSpV:
    def test_matches_dense_product(self, rng):
        dense, csr = _random_sparse(rng, 25, 30)
        xs = rng.random(30) * (rng.random(30) < 0.5)
        result = ref.spmspv(csr, SparseVector.from_dense(xs))
        assert np.allclose(result.to_dense(), dense @ xs)

    def test_empty_vector(self, small_csr):
        result = ref.spmspv(small_csr, SparseVector(small_csr.shape[1], [], []))
        assert result.nnz == 0

    def test_length_mismatch(self, small_csr):
        with pytest.raises(ShapeError):
            ref.spmspv(small_csr, SparseVector(small_csr.shape[1] + 3, [], []))

    def test_output_is_sparse(self, rng):
        dense, csr = _random_sparse(rng, 40, 40, density=0.05)
        xs = SparseVector(40, [0], [1.0])
        out = ref.spmspv(csr, xs)
        assert out.nnz <= 40
        assert np.allclose(out.to_dense(), dense[:, 0])

    def test_agrees_with_spmv(self, rng):
        dense, csr = _random_sparse(rng, 20, 20)
        xs = rng.random(20) * (rng.random(20) < 0.5)
        assert np.allclose(
            ref.spmspv(csr, SparseVector.from_dense(xs)).to_dense(),
            ref.spmv(csr, xs),
        )


class TestSpMM:
    def test_matches_numpy(self, rng):
        dense, csr = _random_sparse(rng, 20, 30)
        b = rng.random((30, 7))
        assert np.allclose(ref.spmm(csr, b), dense @ b)

    def test_shape_mismatch(self, small_csr):
        with pytest.raises(ShapeError):
            ref.spmm(small_csr, np.ones((small_csr.shape[1] + 1, 4)))

    def test_single_column_equals_spmv(self, rng):
        dense, csr = _random_sparse(rng, 15, 15)
        x = rng.random(15)
        assert np.allclose(ref.spmm(csr, x[:, None])[:, 0], ref.spmv(csr, x))

    def test_paper_width_64(self, rng):
        dense, csr = _random_sparse(rng, 20, 20)
        b = rng.random((20, 64))
        assert np.allclose(ref.spmm(csr, b), dense @ b)


class TestSpGEMM:
    def test_matches_numpy(self, rng):
        da, a = _random_sparse(rng, 20, 25)
        db, b = _random_sparse(rng, 25, 15)
        assert np.allclose(ref.spgemm(a, b).to_dense(), da @ db)

    def test_square_self_product(self, rng):
        da, a = _random_sparse(rng, 20, 20, density=0.2)
        assert np.allclose(ref.spgemm(a, a).to_dense(), da @ da)

    def test_inner_dim_mismatch(self, small_csr):
        with pytest.raises(ShapeError):
            ref.spgemm(small_csr, small_csr)  # 40x56 @ 40x56

    def test_identity_is_neutral(self, rng):
        _, a = _random_sparse(rng, 12, 12)
        eye = CSRMatrix.identity(12)
        assert ref.spgemm(a, eye) == a
        assert ref.spgemm(eye, a) == a

    def test_empty_product(self):
        a = CSRMatrix.empty((5, 5))
        assert ref.spgemm(a, CSRMatrix.identity(5)).nnz == 0

    def test_numerical_cancellation_dropped(self):
        a = CSRMatrix.from_dense(np.array([[1.0, -1.0]]))
        b = CSRMatrix.from_dense(np.array([[1.0], [1.0]]))
        assert ref.spgemm(a, b).nnz == 0

    @given(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12), st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_random(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        da, a = _random_sparse(rng, m, k)
        db, b = _random_sparse(rng, k, n)
        assert np.allclose(ref.spgemm(a, b).to_dense(), da @ db)


class TestAdd:
    def test_matches_numpy(self, rng):
        da, a = _random_sparse(rng, 10, 12)
        db, b = _random_sparse(rng, 10, 12)
        assert np.allclose(ref.add(a, b).to_dense(), da + db)

    def test_scaled_add(self, rng):
        da, a = _random_sparse(rng, 8, 8)
        db, b = _random_sparse(rng, 8, 8)
        assert np.allclose(ref.add(a, b, 2.0, -0.5).to_dense(), 2 * da - 0.5 * db)

    def test_shape_mismatch(self, small_csr):
        with pytest.raises(ShapeError):
            ref.add(small_csr, CSRMatrix.empty((1, 1)))

    def test_self_cancellation(self, small_csr):
        assert ref.add(small_csr, small_csr, 1.0, -1.0).nnz == 0

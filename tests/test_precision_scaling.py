"""FP32/FP16 behaviour of every architecture (the Table VI scaling)."""

import numpy as np
import pytest

from repro.arch.config import FP16, FP32, FP64, UniSTCConfig
from repro.arch.tasks import T1Task
from repro.arch.unistc import UniSTC
from repro.baselines import DsSTC, Gamma, NvDTC, RmSTC, Sigma, Trapezoid

from tests.conftest import make_block_task

DENSE = T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))
DENSE_VEC = T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 1), bool))


def _fp32_models():
    return [
        NvDTC(FP32), Gamma(FP32), Sigma(FP32), Trapezoid(FP32),
        DsSTC(FP32), RmSTC(FP32), UniSTC(UniSTCConfig(precision=FP32)),
    ]


class TestFP32:
    @pytest.mark.parametrize("model_idx", range(7))
    def test_dense_block_halves_cycles(self, model_idx):
        stc = _fp32_models()[model_idx]
        result = stc.simulate_block(DENSE)
        assert result.cycles == 32
        assert result.products == 4096
        assert result.util_hist.fractions()[3] == 1.0

    @pytest.mark.parametrize("model_idx", range(7))
    @pytest.mark.parametrize("seed", range(3))
    def test_products_conserved(self, model_idx, seed):
        stc = _fp32_models()[model_idx]
        task = make_block_task(0.3, 0.3, seed)
        assert stc.simulate_block(task).products == task.intermediate_products()

    @pytest.mark.parametrize("model_idx", range(7))
    def test_fp32_never_slower_than_fp64(self, model_idx):
        fp32 = _fp32_models()[model_idx]
        fp64_models = [
            NvDTC(FP64), Gamma(FP64), Sigma(FP64), Trapezoid(FP64),
            DsSTC(FP64), RmSTC(FP64), UniSTC(),
        ]
        fp64 = fp64_models[model_idx]
        for seed in range(4):
            task = make_block_task(0.4, 0.4, seed)
            assert fp32.simulate_block(task).cycles <= fp64.simulate_block(task).cycles

    def test_ds_stc_spmv_cap_shrinks(self):
        """At FP32 the outer product's vector cap drops to 8/128."""
        ds = DsSTC(FP32)
        result = ds.simulate_block(DENSE_VEC)
        assert result.products / (result.cycles * 128) <= 8 / 128 + 1e-9

    def test_rm_stc_spmv_cap_constant(self):
        """RM-STC's 16x4x2 at FP32 keeps the 25% vector cap (32/128)."""
        rm = RmSTC(FP32)
        result = rm.simulate_block(DENSE_VEC)
        assert result.products / (result.cycles * 128) <= 0.25 + 1e-9

    def test_uni_dense_vec_fp32(self):
        """A vector task has only 4 distinct output tiles, so the
        accumulator-conflict rule (one writer per tile per cycle) keeps
        the dense SpMV block at 4 cycles even with 128 MACs."""
        uni = UniSTC(UniSTCConfig(precision=FP32))
        result = uni.simulate_block(DENSE_VEC)
        assert result.cycles == 4
        no_stall = UniSTC(UniSTCConfig(precision=FP32, conflict_stall=False))
        assert no_stall.simulate_block(DENSE_VEC).cycles == 2


class TestFP16:
    def test_uni_dense_block(self):
        uni = UniSTC(UniSTCConfig(precision=FP16))
        result = uni.simulate_block(DENSE)
        assert result.cycles == 16
        assert result.util_hist.fractions()[3] == 1.0

    def test_mac_budget_ladder(self):
        """The §IV-A scaling: 64 -> 128 -> 256 MACs."""
        cycles = {}
        for precision in (FP64, FP32, FP16):
            uni = UniSTC(UniSTCConfig(precision=precision))
            cycles[precision.macs] = uni.simulate_block(DENSE).cycles
        assert cycles[64] == 2 * cycles[128] == 4 * cycles[256]


class TestPackageSurface:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_main_module_importable(self):
        import importlib.util

        spec = importlib.util.find_spec("repro.__main__")
        assert spec is not None

"""Tests for the analysis metrics and table rendering."""

import numpy as np
import pytest

from repro.analysis import metrics
from repro.analysis.tables import render_table
from repro.errors import SimulationError
from repro.sim.results import SimReport


def _report(name, cycles, energy):
    return SimReport(stc=name, kernel="k", cycles=cycles, energy_pj=energy)


class TestBaselineMetrics:
    @pytest.fixture
    def reports(self):
        return {
            "ds-stc": _report("ds-stc", 100, 50.0),
            "rm-stc": _report("rm-stc", 50, 40.0),
            "uni-stc": _report("uni-stc", 25, 20.0),
        }

    def test_speedups(self, reports):
        s = metrics.speedups_vs_baseline(reports, "ds-stc")
        assert s["ds-stc"] == 1.0
        assert s["rm-stc"] == 2.0
        assert s["uni-stc"] == 4.0

    def test_energy_reductions(self, reports):
        e = metrics.energy_reductions_vs_baseline(reports, "ds-stc")
        assert e["uni-stc"] == 2.5

    def test_efficiency_is_product(self, reports):
        eff = metrics.efficiency_vs_baseline(reports, "ds-stc")
        assert eff["uni-stc"] == pytest.approx(4.0 * 2.5)

    def test_missing_baseline(self, reports):
        with pytest.raises(SimulationError):
            metrics.speedups_vs_baseline(reports, "nv-dtc")


class TestDensityBuckets:
    def test_bucket_edges(self):
        assert metrics.density_bucket(0) == 0
        assert metrics.density_bucket(8) == 1
        assert metrics.density_bucket(4096) == len(metrics.DENSITY_BUCKETS) - 1

    def test_buckets_cover_paper_range(self):
        lo = metrics.DENSITY_BUCKETS[0][0]
        hi = metrics.DENSITY_BUCKETS[-1][1]
        assert lo == 0 and hi > 4096

    def test_bucketise(self):
        values = [1.0, 2.0, 3.0]
        densities = [1, 100, 3000]
        buckets = metrics.bucketise(values, densities)
        assert buckets[0] == [1.0]
        assert buckets[2] == [2.0]
        assert buckets[5] == [3.0]

    def test_bucketise_length_mismatch(self):
        with pytest.raises(SimulationError):
            metrics.bucketise([1.0], [1, 2])

    def test_bucket_geomeans_nan_for_empty(self):
        means = metrics.bucket_geomeans([[2.0, 8.0], []])
        assert means[0] == pytest.approx(4.0)
        assert np.isnan(means[1])


class TestRenderTable:
    def test_alignment_and_header(self):
        out = render_table(["name", "value"], [["a", 1.5], ["bb", 20]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_title(self):
        out = render_table(["x"], [[1]], title="Table T")
        assert out.splitlines()[0] == "Table T"

    def test_none_and_nan_rendered_as_dash(self):
        out = render_table(["x", "y"], [[None, float("nan")]])
        assert out.splitlines()[-1].split() == ["-", "-"]

    def test_precision(self):
        out = render_table(["x"], [[1.23456]], precision=3)
        assert "1.235" in out

    def test_bool_rendering(self):
        out = render_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

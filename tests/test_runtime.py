"""Tests for the experiment runtime: RunSpec, Session, manifests."""

import json

import pytest

from repro import obs
from repro.errors import ConfigError, ReproError
from repro.runtime import (
    MANIFEST_SCHEMA,
    CachePolicy,
    ObsPolicy,
    ResiliencePolicy,
    RunSpec,
    Session,
)


class TestRunSpec:
    def test_fingerprint_is_stable_across_param_order(self):
        a = RunSpec("kernels", params={"x": 1, "y": 2})
        b = RunSpec("kernels", params={"y": 2, "x": 1})
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_ignores_artifact_paths(self):
        a = RunSpec("kernels", params={"x": 1},
                    obs=ObsPolicy(trace_path="/tmp/a.json"),
                    cache=CachePolicy(path="/tmp/a.pkl"),
                    manifest_dir="/tmp/runs-a")
        b = RunSpec("kernels", params={"x": 1})
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_varies_with_command_params_seed(self):
        base = RunSpec("kernels", params={"x": 1}, seed=0)
        assert base.fingerprint() != RunSpec("corpus", params={"x": 1}).fingerprint()
        assert base.fingerprint() != RunSpec("kernels", params={"x": 2}).fingerprint()
        assert base.fingerprint() != RunSpec("kernels", params={"x": 1},
                                             seed=1).fingerprint()

    def test_needs_a_command(self):
        with pytest.raises(ConfigError):
            RunSpec("")

    def test_params_must_be_json_serialisable(self):
        with pytest.raises(ConfigError, match="JSON-serialisable"):
            RunSpec("kernels", params={"x": object()})

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ConfigError, match="--resume requires"):
            ResiliencePolicy(resume=True)

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            ResiliencePolicy(max_retries=-1)

    def test_timeout_zero_means_unlimited(self):
        assert ResiliencePolicy(timeout_s=0.0).timeout is None
        assert ResiliencePolicy(timeout_s=2.5).timeout == 2.5


class TestSession:
    def _spec(self, tmp_path, **kwargs):
        kwargs.setdefault("manifest_dir", str(tmp_path / "runs"))
        return RunSpec("test-cmd", params={"k": "v"}, **kwargs)

    def test_manifest_written_on_success(self, tmp_path):
        spec = self._spec(tmp_path)
        with Session(spec) as session:
            pass
        artifact = session.artifact
        assert artifact is not None and artifact.path is not None
        manifest = json.loads(artifact.path.read_text())
        assert manifest["kind"] == "repro.run"
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["command"] == "test-cmd"
        assert manifest["fingerprint"] == spec.fingerprint()
        assert manifest["seed"] == 0
        assert manifest["params"] == {"k": "v"}
        assert manifest["status"] == "ok"
        assert manifest["wall_s"] >= 0
        assert "cache" in manifest and "version" in manifest

    def test_manifest_written_on_error_and_exception_propagates(self, tmp_path):
        spec = self._spec(tmp_path)
        with pytest.raises(ReproError):
            with Session(spec) as session:
                raise ReproError("boom")
        manifest = session.artifact.manifest
        assert manifest["status"] == "error"
        assert "boom" in manifest["error"]

    def test_recorded_failure_marks_status(self, tmp_path):
        with Session(self._spec(tmp_path)) as session:
            session.fail("bad input")
            session.exit_code = 2
        manifest = session.artifact.manifest
        assert manifest["status"] == "error"
        assert manifest["exit_code"] == 2

    def test_empty_manifest_dir_disables_manifest(self, tmp_path):
        with Session(self._spec(tmp_path, manifest_dir="")) as session:
            pass
        assert session.artifact.path is None
        assert session.artifact.manifest["status"] == "ok"

    def test_rng_is_seeded_and_cached(self, tmp_path):
        with Session(self._spec(tmp_path, seed=42)) as session:
            rng = session.rng
            assert session.rng is rng
            first = rng.random()
        with Session(self._spec(tmp_path, seed=42)) as session:
            assert session.rng.random() == first

    def test_obs_enabled_for_run_then_restored(self, tmp_path):
        assert not obs.enabled()
        trace = tmp_path / "t.json"
        spec = self._spec(tmp_path, obs=ObsPolicy(trace_path=str(trace)))
        with Session(spec):
            assert obs.enabled()
        assert not obs.enabled()
        assert trace.exists()

    def test_store_unbound_even_when_artifact_writing_fails(self, tmp_path,
                                                            monkeypatch):
        from repro.sim import engine

        engine.unbind_store()
        spec = self._spec(
            tmp_path, cache=CachePolicy(store_dir=str(tmp_path / "store")))

        def boom(self, manifest):
            raise RuntimeError("manifest writing exploded")

        monkeypatch.setattr(Session, "_write_manifest", boom)
        with pytest.raises(RuntimeError, match="manifest writing"):
            with Session(spec):
                assert engine.bound_store() is not None
        # The binding and handle must not outlive the session even
        # when the artifact-writing half of __exit__ raises.
        assert engine.bound_store() is None

    def test_metrics_snapshot_in_manifest_when_obs_on(self, tmp_path):
        from repro.formats.bbc import BBCMatrix
        from repro.registry import create_stc
        from repro.sim.engine import simulate_kernel

        spec = self._spec(tmp_path, obs=ObsPolicy(force=True))
        with Session(spec) as session:
            bbc = BBCMatrix.from_coo(session.matrix("band:64:8:0.5"))
            simulate_kernel("spmv", bbc, create_stc("uni-stc"))
        assert "sim.cycles" in session.artifact.manifest["metrics"]["counters"]

    def test_sweep_and_runner_compose_through_registry(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        spec = self._spec(
            tmp_path, seed=3,
            resilience=ResiliencePolicy(timeout_s=30.0, max_retries=2,
                                        checkpoint=str(journal)),
        )
        with Session(spec) as session:
            matrices = {"m": session.matrix("band:64:8:0.5")}
            sweep = session.sweep(matrices, ["ds-stc", "uni-stc"], ["spmv"])
            runner = session.runner(sweep)
            assert runner.timeout_s == 30.0
            assert runner.retry.max_retries == 2
            assert runner.seed == 3
            summary = runner.run()
        assert summary.n_ok == 2
        assert journal.exists()

    def test_unwritable_manifest_dir_degrades_gracefully(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        spec = self._spec(tmp_path, manifest_dir=str(blocker / "runs"))
        with Session(spec) as session:
            pass
        assert session.artifact.path is None

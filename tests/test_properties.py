"""Cross-module metamorphic and property-based tests.

These pin invariants no single-module test covers: permutation
invariance of simulated totals, agreement between analytic cycle
formulas and the dataflow models, conservation across format chains,
and monotonicity of the energy model.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.counters import Counters
from repro.arch.tasks import T1Task
from repro.arch.unistc import UniSTC
from repro.baselines import DsSTC, RmSTC
from repro.energy.model import DEFAULT_MODEL
from repro.formats import BBCMatrix, COOMatrix, CSRMatrix
from repro.kernels import bbc_kernels, reference
from repro.sim.engine import simulate_kernel
from repro.workloads.matrixmarket import read_mtx, write_mtx

from tests.conftest import make_block_task


class TestPermutationInvariance:
    """Reordering whole block rows permutes the T1 stream but must not
    change any aggregate the simulators report."""

    @pytest.mark.parametrize("stc_cls", [UniSTC, DsSTC, RmSTC])
    def test_block_row_permutation(self, stc_cls, rng):
        dense = rng.random((64, 64)) * (rng.random((64, 64)) < 0.2)
        # Permute rows in whole 16-blocks.
        perm_blocks = rng.permutation(4)
        permuted = np.concatenate([dense[16 * b : 16 * (b + 1)] for b in perm_blocks])
        a = BBCMatrix.from_dense(dense)
        b = BBCMatrix.from_dense(permuted)
        stc = stc_cls()
        ra = simulate_kernel("spmv", a, stc)
        rb = simulate_kernel("spmv", b, stc)
        assert ra.cycles == rb.cycles
        assert ra.products == rb.products
        assert ra.energy_pj == pytest.approx(rb.energy_pj)


class TestAnalyticCrossChecks:
    """Closed-form cycle counts the dataflow models must reproduce."""

    @pytest.mark.parametrize("seed", range(6))
    def test_ds_stc_cycle_formula(self, seed):
        """DS-STC cycles = sum over live K of chunk products."""
        task = make_block_task(0.3, 0.3, seed)
        a, b = task.a_bitmap(), task.b_bitmap()
        expected = 0
        for k in range(16):
            na, nb = int(a[:, k].sum()), int(b[k].sum())
            if na and nb:
                expected += -(-na // 8) * (-(-nb // 8))
        result = DsSTC().simulate_block(task)
        assert result.cycles == max(1, expected)

    @pytest.mark.parametrize("seed", range(6))
    def test_uni_products_formula(self, seed):
        task = make_block_task(0.35, 0.35, seed)
        a, b = task.a_bitmap().astype(int), task.b_bitmap().astype(int)
        assert UniSTC().simulate_block(task).products == int((a.sum(0) * b.sum(1)).sum())

    @pytest.mark.parametrize("seed", range(4))
    def test_uni_c_outputs_formula(self, seed):
        task = make_block_task(0.3, 0.3, seed)
        a, b = task.a_bitmap().astype(int), task.b_bitmap().astype(int)
        expected = int(np.count_nonzero(a @ b))
        result = UniSTC().simulate_block(task)
        assert result.counters.get("c_elem_writes") == expected


class TestFormatChains:
    """Values survive arbitrary chains of format conversions."""

    @given(st.integers(1, 40), st.integers(1, 40), st.integers(0, 200))
    @settings(max_examples=15, deadline=None)
    def test_coo_csr_bbc_chain(self, m, n, seed):
        gen = np.random.default_rng(seed)
        dense = gen.random((m, n)) * (gen.random((m, n)) < 0.3)
        coo = COOMatrix.from_dense(dense)
        chained = BBCMatrix.from_csr(CSRMatrix.from_coo(coo)).to_csr().to_coo()
        assert chained == coo

    def test_mtx_bbc_save_chain(self, tmp_path, rng):
        dense = rng.random((30, 30)) * (rng.random((30, 30)) < 0.25)
        coo = COOMatrix.from_dense(dense)
        write_mtx(tmp_path / "m.mtx", coo)
        bbc = BBCMatrix.from_coo(read_mtx(tmp_path / "m.mtx"))
        bbc.save(tmp_path / "m.npz")
        assert np.allclose(BBCMatrix.load(tmp_path / "m.npz").to_dense(), dense)


class TestKernelAlgebra:
    """Algebraic identities the numeric kernels must satisfy."""

    def test_spmv_linearity(self, rng):
        dense = rng.random((32, 32)) * (rng.random((32, 32)) < 0.3)
        bbc = BBCMatrix.from_dense(dense)
        x, y = rng.random(32), rng.random(32)
        lhs = bbc_kernels.spmv(bbc, 2 * x + y)
        rhs = 2 * bbc_kernels.spmv(bbc, x) + bbc_kernels.spmv(bbc, y)
        assert np.allclose(lhs, rhs)

    def test_spgemm_associativity(self, rng):
        ds = [rng.random((20, 20)) * (rng.random((20, 20)) < 0.3) for _ in range(3)]
        ms = [CSRMatrix.from_dense(d) for d in ds]
        left = reference.spgemm(reference.spgemm(ms[0], ms[1]), ms[2])
        right = reference.spgemm(ms[0], reference.spgemm(ms[1], ms[2]))
        assert np.allclose(left.to_dense(), right.to_dense())

    def test_transpose_product_identity(self, rng):
        dense = rng.random((24, 18)) * (rng.random((24, 18)) < 0.3)
        a = CSRMatrix.from_dense(dense)
        ata = reference.spgemm(a.transpose(), a)
        assert np.allclose(ata.to_dense(), dense.T @ dense)
        assert np.allclose(ata.to_dense(), ata.to_dense().T)

    def test_spmm_column_consistency(self, rng):
        dense = rng.random((20, 20)) * (rng.random((20, 20)) < 0.3)
        bbc = BBCMatrix.from_dense(dense)
        b = rng.random((20, 5))
        full = bbc_kernels.spmm(bbc, b)
        for j in range(5):
            assert np.allclose(full[:, j], bbc_kernels.spmv(bbc, b[:, j]))


class TestEnergyProperties:
    @given(st.integers(0, 10_000), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_energy_monotone_in_counts(self, low, extra):
        base = Counters({"mac_ops": low, "a_elem_reads": low})
        more = Counters({"mac_ops": low + extra, "a_elem_reads": low})
        assert (DEFAULT_MODEL.energy_pj(more, "uni-stc")
                >= DEFAULT_MODEL.energy_pj(base, "uni-stc"))

    @given(st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_energy_scales_linearly(self, factor):
        counters = Counters({"mac_ops": 100, "c_net_transfers": 50, "queue_ops": 10})
        scaled = counters.scaled(factor)
        assert DEFAULT_MODEL.energy_pj(scaled, "rm-stc") == pytest.approx(
            factor * DEFAULT_MODEL.energy_pj(counters, "rm-stc")
        )


class TestSimulatorStability:
    @pytest.mark.parametrize("density", [0.05, 0.2, 0.5, 1.0])
    def test_task_weight_equivalence(self, density):
        """One weighted task equals repeating the unweighted task."""
        from repro.sim.engine import clear_cache, simulate_tasks

        base = make_block_task(density, density, 3)
        repeated = [base] * 5
        weighted = [T1Task(base.a_bits, base.b_bits, n=base.n, weight=5)]
        uni = UniSTC()
        clear_cache()
        a = simulate_tasks(uni, repeated)
        clear_cache()
        b = simulate_tasks(uni, weighted)
        assert a.cycles == b.cycles
        assert a.energy_pj == pytest.approx(b.energy_pj)
        assert np.array_equal(a.util_hist.bins, b.util_hist.bins)

    def test_cache_does_not_change_results(self, banded_bbc):
        from repro.sim.engine import clear_cache

        uni = UniSTC()
        clear_cache()
        cold = simulate_kernel("spgemm", banded_bbc, uni)
        warm = simulate_kernel("spgemm", banded_bbc, uni)
        assert cold.cycles == warm.cycles
        assert cold.energy_pj == pytest.approx(warm.energy_pj)
        assert cold.counters == warm.counters

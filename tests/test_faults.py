"""Tests for fault injection and BBC integrity validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.formats.bbc import BBCMatrix
from repro.formats.coo import COOMatrix
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    run_campaign,
)
from repro.sim import engine
from repro.workloads.suitesparse import corpus, iter_matrices
from repro.workloads.synthetic import banded, random_uniform


@pytest.fixture(autouse=True)
def fresh_engine_cache():
    engine.clear_cache()
    yield
    engine.clear_cache()


@pytest.fixture
def bbc():
    return BBCMatrix.from_coo(banded(96, 12, 0.5, seed=5))


class TestValidate:
    def test_clean_matrix_reports_nothing(self, bbc):
        assert bbc.validate() == []

    def test_zero_false_positives_across_clean_corpus(self):
        """Acceptance: validate() is silent on every clean corpus matrix."""
        specs = corpus(sizes=(64, 128), limit=24)
        assert specs, "corpus must not be empty"
        for name, coo in iter_matrices(specs):
            issues = BBCMatrix.from_coo(coo).validate()
            assert issues == [], f"false positive on clean matrix {name}: {issues}"

    def test_empty_matrix_is_clean(self):
        empty = BBCMatrix.from_coo(COOMatrix((64, 64), [], [], []))
        assert empty.validate() == []
        assert len(empty) == 0
        assert not empty

    def test_detects_row_ptr_regression(self, bbc):
        bad = bbc.copy()
        bad.row_ptr[1] = bad.row_ptr[2] + 1 if bad.row_ptr.size > 2 else 99
        assert any("row_ptr" in issue for issue in bad.validate())

    def test_detects_lv1_popcount_mismatch(self, bbc):
        bad = bbc.copy()
        bad.bitmap_lv1[0] ^= np.uint16(0xFFFF)
        assert bad.validate()

    def test_detects_value_count_mismatch(self, bbc):
        bad = bbc.copy()
        bad.values = bad.values[:-1]
        assert any("nnz" in issue or "value count" in issue
                   for issue in bad.validate())

    def test_detects_nonfinite_values(self, bbc):
        bad = bbc.copy()
        bad.values[0] = np.nan
        assert any("finite" in issue for issue in bad.validate())

    def test_copy_is_independent(self, bbc):
        dup = bbc.copy()
        dup.values[0] += 1.0
        assert dup.values[0] != bbc.values[0]
        assert dup.validate() == []


class TestFaultInjector:
    def test_metadata_flips_are_always_detected(self, bbc):
        injector = FaultInjector(seed=11)
        for kind in ("lv1_bitflip", "lv2_bitflip"):
            for _ in range(8):
                corrupt, fault = injector.inject_matrix(bbc, kind)
                assert fault.kind == kind
                assert corrupt.validate(), (
                    f"{fault.kind} at {fault.site} slipped past validate()"
                )

    def test_injection_leaves_the_original_untouched(self, bbc):
        before = bbc.bitmap_lv2.copy()
        injector = FaultInjector(seed=3)
        injector.inject_matrix(bbc, "lv2_bitflip")
        assert np.array_equal(bbc.bitmap_lv2, before)

    def test_same_seed_same_faults(self, bbc):
        sites_a = [FaultInjector(seed=9).inject_matrix(bbc, "value_bitflip")[1].site
                   for _ in range(1)]
        sites_b = [FaultInjector(seed=9).inject_matrix(bbc, "value_bitflip")[1].site
                   for _ in range(1)]
        assert sites_a == sites_b

    def test_empty_matrix_rejected(self):
        empty = BBCMatrix.from_coo(COOMatrix((32, 32), [], [], []))
        with pytest.raises(ConfigError):
            FaultInjector(seed=0).inject_matrix(empty, "lv1_bitflip")

    def test_unknown_kind_rejected(self, bbc):
        with pytest.raises(ConfigError):
            FaultInjector(seed=0).inject_matrix(bbc, "cosmic_ray")

    def test_task_drop_and_dup_change_counts(self):
        injector = FaultInjector(seed=2)
        from repro.arch.tasks import T1Task

        tasks = [
            T1Task.from_bitmaps(np.eye(16, dtype=bool), np.ones((16, 1), dtype=bool))
            for _ in range(5)
        ]
        dropped, _ = injector.corrupt_tasks(tasks, "task_drop")
        assert len(dropped) == 4
        duplicated, _ = injector.corrupt_tasks(tasks, "task_dup")
        assert len(duplicated) == 6
        shuffled, _ = injector.corrupt_tasks(tasks, "task_reorder")
        assert len(shuffled) == 5


class TestCampaign:
    def test_deterministic_breakdown(self):
        """Acceptance: a seeded campaign is a pure function of its inputs."""
        coo = banded(96, 12, 0.5, seed=5)
        a = run_campaign(coo, trials=22, seed=42)
        engine.clear_cache()
        b = run_campaign(coo, trials=22, seed=42)
        assert a.breakdown() == b.breakdown()
        assert [(t.fault.kind, t.fault.site, t.outcome) for t in a.trials] == \
               [(t.fault.kind, t.fault.site, t.outcome) for t in b.trials]

    def test_outcome_structure(self):
        campaign = run_campaign(banded(64, 8, 0.5, seed=1), trials=11, seed=0)
        assert len(campaign.trials) == 11
        assert sum(campaign.totals().values()) == 11
        for trial in campaign.trials:
            assert trial.outcome in ("detected", "masked", "sdc")
            assert trial.fault.kind in FAULT_KINDS
        assert 0.0 <= campaign.detection_coverage() <= 1.0

    def test_bitmap_popcount_redundancy_detects_flips(self):
        campaign = run_campaign(
            banded(96, 12, 0.5, seed=5), trials=16, seed=7,
            kinds=("lv1_bitflip", "lv2_bitflip"),
        )
        assert campaign.totals() == {"detected": 16, "masked": 0, "sdc": 0}

    def test_task_count_accounting_detects_drop_and_dup(self):
        campaign = run_campaign(
            banded(96, 12, 0.5, seed=5), trials=8, seed=7,
            kinds=("task_drop", "task_dup"),
        )
        assert campaign.totals()["detected"] == 8

    def test_task_reorder_is_masked(self):
        campaign = run_campaign(
            banded(96, 12, 0.5, seed=5), trials=4, seed=7, kinds=("task_reorder",)
        )
        assert campaign.totals()["masked"] == 4

    def test_cache_poisoning_is_silent_data_corruption(self):
        campaign = run_campaign(
            banded(96, 12, 0.5, seed=5), trials=4, seed=7, kinds=("cache_result",)
        )
        assert campaign.totals()["sdc"] == 4

    def test_cache_poisoning_trials_restore_the_cache(self):
        coo = banded(64, 8, 0.5, seed=2)
        run_campaign(coo, trials=6, seed=1, kinds=("cache_result",))
        # Any subsequent simulation must see only clean cached results.
        from repro.arch.unistc import UniSTC
        from repro.sim.engine import simulate_kernel

        bbc = BBCMatrix.from_coo(coo)
        warm = simulate_kernel("spmv", bbc, UniSTC())
        engine.clear_cache()
        cold = simulate_kernel("spmv", bbc, UniSTC())
        assert warm.cycles == cold.cycles

    def test_spmm_campaign_runs(self):
        campaign = run_campaign(
            random_uniform(64, 64, 0.1, seed=3), kernel="spmm", trials=6, seed=0,
            kinds=("lv1_bitflip", "value_bitflip"),
        )
        assert len(campaign.trials) == 6

    def test_rejects_bad_inputs(self):
        coo = banded(64, 8, 0.5, seed=1)
        with pytest.raises(ConfigError):
            run_campaign(coo, trials=0)
        with pytest.raises(ConfigError):
            run_campaign(coo, kinds=("sunspots",))
        with pytest.raises(ConfigError):
            run_campaign(coo, kernel="spgemm")
        with pytest.raises(ConfigError):
            run_campaign(COOMatrix((32, 32), [], [], []))


class TestFaultsCLI:
    def test_faults_command(self, capsys):
        assert main(["faults", "--matrix", "band:64:8:0.5",
                     "--trials", "11", "--seed", "4"]) == 0
        out = capsys.readouterr().out
        assert "detection coverage" in out
        assert "TOTAL" in out

    def test_faults_command_is_deterministic(self, capsys):
        args = ["faults", "--matrix", "band:64:8:0.5", "--trials", "11",
                "--seed", "4"]
        assert main(args) == 0
        first = capsys.readouterr().out
        engine.clear_cache()
        assert main(args) == 0
        assert capsys.readouterr().out == first

    def test_faults_kind_filter(self, capsys):
        assert main(["faults", "--matrix", "band:64:8:0.5", "--trials", "4",
                     "--kinds", "lv1_bitflip,lv2_bitflip"]) == 0
        out = capsys.readouterr().out
        assert "lv1_bitflip" in out
        assert "value_bitflip" not in out

"""Tests for the fault-tolerant sweep runner (repro.resilience.runner)."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.arch.base import BlockResult, STCModel
from repro.arch.unistc import UniSTC
from repro.cli import main
from repro.errors import (
    CaseTimeoutError,
    CheckpointError,
    ConfigError,
    DataCorruptionError,
    FormatError,
    ShapeError,
    SimulationError,
)
from repro.resilience.runner import (
    ResilientRunner,
    RetryPolicy,
    classify_error,
)
from repro.sim import cachestore, engine
from repro.sim.sweep import Sweep
from repro.workloads.synthetic import banded


@pytest.fixture(autouse=True)
def fresh_engine_cache():
    engine.clear_cache()
    yield
    engine.clear_cache()


def make_sweep(n_matrices=2, kernels=("spmv",), stcs=None):
    matrices = {
        f"m{i}": banded(64, 6 + 2 * i, 0.5, seed=i) for i in range(n_matrices)
    }
    return Sweep(
        matrices=matrices,
        stcs=dict(stcs) if stcs else {"uni-stc": UniSTC},
        kernels=list(kernels),
    )


class BoomFactory:
    """A model factory that always fails with a chosen exception."""

    def __init__(self, exc_type=SimulationError, message="boom"):
        self.exc_type = exc_type
        self.message = message
        self.calls = 0

    def __call__(self):
        self.calls += 1
        raise self.exc_type(self.message)


class FlakyFactory:
    """Fails the first ``fail_times`` calls, then behaves like UniSTC."""

    def __init__(self, fail_times=1):
        self.fail_times = fail_times
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.fail_times:
            raise SimulationError("transient glitch")
        return UniSTC()


class HangModel(STCModel):
    """Blocks inside simulate_block until an event is set."""

    name = "hang"

    def __init__(self, release: threading.Event):
        self.release = release

    def simulate_block(self, task) -> BlockResult:
        self.release.wait(timeout=30)
        raise SimulationError("released")

    @property
    def macs(self) -> int:
        return 256


class TestClassifyError:
    def test_taxonomy_labels(self):
        assert classify_error(CaseTimeoutError("t")) == "timeout"
        assert classify_error(DataCorruptionError("d")) == "corruption"
        assert classify_error(FormatError("f")) == "format"
        assert classify_error(ShapeError("s")) == "shape"
        assert classify_error(ConfigError("c")) == "config"
        assert classify_error(SimulationError("s")) == "simulation"
        assert classify_error(MemoryError()) == "resource"
        assert classify_error(RuntimeError("?")) == "unexpected"


class TestCleanRuns:
    def test_matches_plain_sweep(self):
        sweep = make_sweep(2)
        plain = {(r.case.matrix_name, r.case.kernel, r.case.stc_name): r.report.cycles
                 for r in make_sweep(2).run()}
        summary = ResilientRunner(sweep).run()
        assert summary.n_failed == 0
        assert summary.n_ok == len(sweep.cases())
        for result in summary.results:
            key = (result.case.matrix_name, result.case.kernel, result.case.stc_name)
            assert result.report.cycles == plain[key]

    def test_progress_callback_sees_every_case(self):
        sweep = make_sweep(2)
        seen = []
        ResilientRunner(sweep).run(progress=seen.append)
        assert len(seen) == len(sweep.cases())
        assert all(o.status == "ok" for o in seen)


class TestIsolationAndRetry:
    def test_failing_stc_does_not_abort_the_sweep(self):
        sweep = make_sweep(2, stcs={"boom": BoomFactory(), "uni-stc": UniSTC})
        summary = ResilientRunner(
            sweep, retry=RetryPolicy(max_retries=0), sleep=lambda s: None
        ).run()
        assert summary.n_failed == 2
        assert summary.n_ok == 2
        assert summary.taxonomy_counts() == {"simulation": 2}
        failure = summary.failures[0].failure
        assert failure.type == "SimulationError"
        assert "boom" in failure.message

    def test_transient_failure_retried_with_backoff(self):
        sweep = make_sweep(1, stcs={"flaky": FlakyFactory(fail_times=1)})
        sleeps = []
        policy = RetryPolicy(max_retries=2, base_delay_s=0.01, jitter=0.5)
        summary = ResilientRunner(sweep, retry=policy, sleep=sleeps.append).run()
        assert summary.n_failed == 0
        assert summary.outcomes[0].attempts == 2
        assert len(sleeps) == 1
        assert 0.01 <= sleeps[0] <= 0.01 * 1.5

    def test_retry_budget_is_bounded(self):
        boom = BoomFactory()
        sweep = make_sweep(1, stcs={"boom": boom})
        policy = RetryPolicy(max_retries=3, base_delay_s=0.0)
        summary = ResilientRunner(sweep, retry=policy, sleep=lambda s: None).run()
        assert summary.n_failed == 1
        assert summary.outcomes[0].attempts == 4
        assert boom.calls == 4

    def test_structural_errors_are_not_retried(self):
        boom = BoomFactory(exc_type=FormatError, message="bad bytes")
        sweep = make_sweep(1, stcs={"boom": boom})
        policy = RetryPolicy(max_retries=5, base_delay_s=0.0)
        summary = ResilientRunner(sweep, retry=policy, sleep=lambda s: None).run()
        assert summary.outcomes[0].attempts == 1
        assert summary.outcomes[0].failure.taxonomy == "format"

    def test_backoff_schedule_is_seeded(self):
        delays_a, delays_b = [], []
        policy = RetryPolicy(max_retries=3, base_delay_s=0.01)
        for sink in (delays_a, delays_b):
            sweep = make_sweep(1, stcs={"boom": BoomFactory()})
            ResilientRunner(sweep, retry=policy, seed=7, sleep=sink.append).run()
        assert delays_a == delays_b


class TestTimeouts:
    def test_hung_case_times_out_and_sweep_continues(self):
        release = threading.Event()
        sweep = make_sweep(
            1, stcs={"hang": lambda: HangModel(release), "uni-stc": UniSTC}
        )
        try:
            summary = ResilientRunner(
                sweep, timeout_s=0.25, retry=RetryPolicy(max_retries=0)
            ).run()
        finally:
            release.set()
        by_stc = {o.case.stc_name: o for o in summary.outcomes}
        assert by_stc["hang"].status == "failed"
        assert by_stc["hang"].failure.taxonomy == "timeout"
        assert "budget" in by_stc["hang"].failure.message
        assert by_stc["uni-stc"].status == "ok"

    def test_fast_cases_unaffected_by_timeout(self):
        sweep = make_sweep(1)
        summary = ResilientRunner(sweep, timeout_s=30.0).run()
        assert summary.n_failed == 0


class _Interrupted(KeyboardInterrupt):
    """Stands in for the user killing the process mid-sweep."""


class CountingFactory:
    """Counts run_case invocations; optionally dies on the Nth call."""

    def __init__(self, die_on_call=None):
        self.calls = 0
        self.die_on_call = die_on_call

    def __call__(self):
        self.calls += 1
        if self.die_on_call is not None and self.calls == self.die_on_call:
            raise _Interrupted()
        return UniSTC()


class TestCheckpointResume:
    def test_killed_mid_sweep_resumes_without_resimulating(self, tmp_path):
        """The acceptance scenario: kill after N cases, resume, complete."""
        journal = tmp_path / "sweep.jsonl"
        dying = CountingFactory(die_on_call=3)
        sweep = make_sweep(3, stcs={"uni-stc": dying})
        runner = ResilientRunner(sweep, journal_path=journal)
        with pytest.raises(KeyboardInterrupt):
            runner.run()
        lines = journal.read_text().splitlines()
        assert len(lines) == 1 + 2  # header + two completed cases
        first_run_reports = {
            (e["case"]["matrix"], e["case"]["kernel"], e["case"]["stc"]):
                e["report"]["cycles"]
            for e in map(json.loads, lines[1:])
        }

        fresh = CountingFactory()
        resumed_sweep = make_sweep(3, stcs={"uni-stc": fresh})
        summary = ResilientRunner(
            resumed_sweep, journal_path=journal, resume=True
        ).run()
        assert summary.n_ok == 3
        assert summary.n_resumed == 2
        # Only the interrupted case was ever simulated on resume.
        assert fresh.calls == 1
        for outcome in summary.outcomes:
            key = (outcome.case.matrix_name, outcome.case.kernel,
                   outcome.case.stc_name)
            if key in first_run_reports:
                assert outcome.resumed
                assert outcome.report.cycles == first_run_reports[key]
        # The journal now covers the full grid.
        assert len(journal.read_text().splitlines()) == 1 + 3

    def test_resumed_reports_are_fully_reconstructed(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        sweep = make_sweep(1)
        original = ResilientRunner(sweep, journal_path=journal).run()
        resumed = ResilientRunner(
            make_sweep(1), journal_path=journal, resume=True
        ).run()
        a, b = original.results[0].report, resumed.results[0].report
        assert a.cycles == b.cycles
        assert a.energy_pj == pytest.approx(b.energy_pj)
        assert np.array_equal(a.util_hist.bins, b.util_hist.bins)
        assert a.counters.as_dict() == pytest.approx(b.counters.as_dict())
        assert a.mean_utilisation == pytest.approx(b.mean_utilisation)

    def test_failed_cases_are_retried_on_resume(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        sweep = make_sweep(1, stcs={"uni-stc": FlakyFactory(fail_times=1)})
        first = ResilientRunner(sweep, journal_path=journal).run()
        assert first.n_failed == 1
        resumed = ResilientRunner(
            make_sweep(1), journal_path=journal, resume=True
        ).run()
        assert resumed.n_failed == 0
        assert resumed.n_resumed == 0

    def test_fingerprint_mismatch_raises_checkpoint_error(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        ResilientRunner(make_sweep(1), journal_path=journal).run()
        other = make_sweep(2)
        with pytest.raises(CheckpointError):
            ResilientRunner(other, journal_path=journal, resume=True).run()

    def test_garbled_header_raises_checkpoint_error(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        journal.write_text("not json at all\n")
        with pytest.raises(CheckpointError):
            ResilientRunner(make_sweep(1), journal_path=journal, resume=True).run()

    def test_truncated_final_line_is_tolerated(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        ResilientRunner(make_sweep(2), journal_path=journal).run()
        # Simulate a crash mid-write: chop the last line in half.
        text = journal.read_text()
        journal.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        summary = ResilientRunner(
            make_sweep(2), journal_path=journal, resume=True
        ).run()
        assert summary.n_ok == len(make_sweep(2).cases())

    def test_resume_without_journal_starts_fresh(self, tmp_path):
        journal = tmp_path / "missing.jsonl"
        summary = ResilientRunner(
            make_sweep(1), journal_path=journal, resume=True
        ).run()
        assert summary.n_ok == len(make_sweep(1).cases())
        assert journal.exists()


class TestThreadLeakAccounting:
    def hang_sweep(self, n, release):
        return make_sweep(n, stcs={"hang": lambda: HangModel(release)})

    def test_leak_cap_fails_fast_after_journaling(self, tmp_path):
        """Each abandoned timeout thread is counted; one past the cap
        raises ThreadLeakError — but only after the triggering case's
        outcome hit the journal, so a restart resumes cleanly."""
        from repro import obs
        from repro.errors import ThreadLeakError

        release = threading.Event()
        journal = tmp_path / "sweep.jsonl"
        runner = ResilientRunner(
            self.hang_sweep(4, release), timeout_s=0.2,
            retry=RetryPolicy(max_retries=0), journal_path=journal,
            max_leaked_threads=2,
        )
        obs.enable()
        try:
            with pytest.raises(ThreadLeakError, match="3 timed-out"):
                runner.run()
            assert runner.leaked_threads == 3
            assert obs.metrics().counter("runner.leaked_threads").total == 3
        finally:
            obs.disable()
            release.set()
        # The cap tripped on the third leak, after journaling it.
        entries = [json.loads(line)
                   for line in journal.read_text().splitlines()[1:]]
        assert len(entries) == 3
        assert all(e["error"]["taxonomy"] == "timeout" for e in entries)

    def test_leak_warning_names_the_case(self, caplog):
        release = threading.Event()
        try:
            with caplog.at_level("WARNING", logger="repro.resilience.runner"):
                ResilientRunner(
                    self.hang_sweep(1, release), timeout_s=0.2,
                    retry=RetryPolicy(max_retries=0),
                ).run()
        finally:
            release.set()
        leaks = [r for r in caplog.records if "zombie thread" in r.message]
        assert len(leaks) == 1
        assert "m0" in leaks[0].getMessage()

    def test_cap_zero_disables_fail_fast(self, tmp_path):
        release = threading.Event()
        try:
            summary = ResilientRunner(
                self.hang_sweep(4, release), timeout_s=0.2,
                retry=RetryPolicy(max_retries=0), max_leaked_threads=0,
            ).run()
        finally:
            release.set()
        assert summary.n_failed == 4  # every timeout journaled, no abort


class TestJournalHardening:
    def test_interior_garbled_line_raises_with_line_number(self, tmp_path):
        """Only a truncated *final* line is crash debris; garble in the
        middle means corruption and must not be silently skipped."""
        journal = tmp_path / "sweep.jsonl"
        ResilientRunner(make_sweep(3), journal_path=journal).run()
        lines = journal.read_text().splitlines()
        lines[2] = '{"case": {"matrix": "m1", "ker'
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="line 3"):
            ResilientRunner(make_sweep(3), journal_path=journal,
                            resume=True).run()

    def test_garbled_non_final_line_with_valid_tail_raises(self, tmp_path):
        journal = tmp_path / "sweep.jsonl"
        ResilientRunner(make_sweep(2), journal_path=journal).run()
        lines = journal.read_text().splitlines()
        lines[1], lines[2] = "%% flipped bits %%", lines[2]
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="line 2"):
            ResilientRunner(make_sweep(2), journal_path=journal,
                            resume=True).run()


class TestCacheIntegration:
    def test_corrupt_cache_warns_and_rebuilds(self, tmp_path, caplog):
        cache = tmp_path / "blocks.npz"
        cache.write_bytes(b"this is not an npz archive")
        with caplog.at_level("WARNING", logger="repro.sim.cachestore"):
            summary = ResilientRunner(make_sweep(1), cache_path=cache).run()
        assert summary.n_failed == 0
        assert any("rebuilding cold" in r.message for r in caplog.records)
        # The unusable file was replaced with a valid warm cache.
        engine.clear_cache()
        assert cachestore.load_cache(cache) > 0


class TestCorpusCLI:
    def test_resume_requires_checkpoint(self, capsys):
        assert main(["corpus", "--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_corpus_with_resilience_flags(self, tmp_path, capsys):
        journal = tmp_path / "corpus.jsonl"
        args = ["corpus", "--limit", "2", "--kernel", "spmv",
                "--stc", "ds-stc,uni-stc", "--checkpoint", str(journal),
                "--timeout", "60", "--max-retries", "2"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "Aver P" in first
        assert journal.exists()
        assert main(args + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert "resumed" in second
        # The comparison table is reproduced exactly from the journal.
        assert first.splitlines()[-1] == second.splitlines()[-1]

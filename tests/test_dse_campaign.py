"""End-to-end tests for DSE campaigns: evaluation, resume, artifacts."""

import json

import pytest

from repro.analysis.regression import compare_runs
from repro.arch.config import UniSTCConfig
from repro.dse import (
    CachedEvaluator,
    Campaign,
    DesignPoint,
    DesignSpace,
    GridSearch,
    default_space,
    make_strategy,
    summarise,
    tile_cycle_scale,
)
from repro.dse.evaluate import campaign_fingerprint
from repro.errors import CheckpointError

MATRIX = "band:64:8:0.5"


def tiny_space(kernels=("spmv",)) -> DesignSpace:
    return DesignSpace.build(
        config_axes={"num_dpgs": [4, 8], "tile": [4]},
        matrices=[MATRIX], kernels=list(kernels),
    )


class TestTileCycleScale:
    def test_native_tile_is_identity(self):
        assert tile_cycle_scale(UniSTCConfig()) == 1.0

    def test_small_tile_starves_the_array(self):
        # 2x2x2 needs 32+ DPGs at 64 MACs; with 8 the array starves.
        cfg = UniSTCConfig(tile=2, num_dpgs=8)
        assert tile_cycle_scale(cfg) > 1.0

    def test_large_tile_pays_timing(self):
        # 8x8x8 takes >= 2 cycles per T3 at 64 MACs.
        cfg = UniSTCConfig(tile=8, num_dpgs=8)
        assert tile_cycle_scale(cfg) >= 2.0

    def test_scale_responds_to_dpg_count(self):
        few = tile_cycle_scale(UniSTCConfig(tile=2, num_dpgs=4,
                                            tile_queue_depth=16))
        many = tile_cycle_scale(UniSTCConfig(tile=2, num_dpgs=16,
                                             tile_queue_depth=32))
        assert few > many


class TestCachedEvaluator:
    def test_baseline_hoisted_per_cell(self):
        space = tiny_space()
        evaluator = CachedEvaluator(fingerprint="test")
        results = evaluator.evaluate(space.points())
        assert all(e is not None for e in results.values())
        # 2 configs + exactly ONE shared baseline = 3 simulations.
        assert evaluator.n_simulated == 3
        assert len(evaluator._baselines) == 1

    def test_baseline_not_rerun_across_batches(self):
        space = tiny_space()
        points = space.points()
        evaluator = CachedEvaluator(fingerprint="test")
        evaluator.evaluate(points[:1])
        before = evaluator.n_simulated
        evaluator.evaluate(points[1:])
        # The second batch adds one config run and zero baseline runs.
        assert evaluator.n_simulated == before + 1

    def test_invalid_point_fails_alone(self):
        space = tiny_space()
        bad = DesignPoint(matrix=MATRIX, kernel="spmv",
                          knobs=(("num_dpgs", 8), ("tile", 5)))
        good = space.points()[0]
        evaluator = CachedEvaluator(fingerprint="test")
        results = evaluator.evaluate([bad, good])
        assert results[bad] is None
        assert results[good] is not None
        assert evaluator.n_failed == 1

    def test_evaluation_objectives_sane(self):
        space = tiny_space()
        evaluator = CachedEvaluator(fingerprint="test")
        e = evaluator.evaluate(space.points())[space.points()[0]]
        assert e.cycles > 0
        assert e.cycles == e.sim_cycles  # tile=4: no bridging
        assert e.energy_pj > 0
        assert e.area_mm2 > 0
        assert e.speedup > 0
        assert e.eed > 0
        assert not e.resumed

    def test_parallel_cores_fold_to_one_report(self):
        space = tiny_space()
        serial = CachedEvaluator(fingerprint="test")
        parallel = CachedEvaluator(fingerprint="test", n_cores=2)
        point = space.points()[0]
        es = serial.evaluate([point])[point]
        ep = parallel.evaluate([point])[point]
        assert ep is not None
        assert ep.cycles > 0
        assert ep.energy_pj == pytest.approx(es.energy_pj, rel=0.05)


class TestCampaignRun:
    def test_grid_campaign_summaries(self):
        result = Campaign(tiny_space(), GridSearch()).run()
        assert len(result.summaries) == 2
        assert not result.failed
        assert result.frontier  # something always survives
        assert 0 <= result.knee < len(result.summaries)
        assert result.n_simulated == 3  # 2 configs + 1 baseline
        assert result.n_resumed == 0

    def test_multi_cell_aggregation(self):
        space = tiny_space(kernels=("spmv", "spgemm"))
        result = Campaign(space, GridSearch()).run()
        for s in result.summaries:
            assert s.cells == 2
        per_point = {(e.point.knobs, e.point.kernel) for e in result.evaluations}
        assert len(per_point) == 4

    def test_random_campaign_deterministic(self):
        space = tiny_space()
        a = Campaign(space, make_strategy("random", seed=0, budget=2)).run()
        b = Campaign(space, make_strategy("random", seed=0, budget=2)).run()
        assert a.to_json() == b.to_json()

    def test_summarise_folds_cells(self):
        space = tiny_space(kernels=("spmv", "spgemm"))
        evaluator = CachedEvaluator(fingerprint="test")
        candidate = space.candidates()[0]
        points = space.expand(candidate)
        results = evaluator.evaluate(points)
        summary = summarise(candidate, [results[p] for p in points])
        assert summary.cells == 2
        assert summary.cycles == sum(results[p].cycles for p in points)
        assert summary.energy_pj == sum(results[p].energy_pj for p in points)


class TestResume:
    def test_cold_then_resume_byte_identical(self, tmp_path):
        space = tiny_space()
        journal = tmp_path / "dse.jsonl"
        cold_out = tmp_path / "cold.json"
        warm_out = tmp_path / "warm.json"

        cold = Campaign(space, GridSearch(), journal_path=journal).run()
        cold.write_json(cold_out)
        assert cold.n_simulated == 3
        assert cold.n_resumed == 0

        warm = Campaign(space, GridSearch(), journal_path=journal,
                        resume=True).run()
        warm.write_json(warm_out)
        assert warm.n_simulated == 0
        assert warm.n_resumed == 3
        assert cold_out.read_bytes() == warm_out.read_bytes()

    def test_interrupted_campaign_resumes_partial(self, tmp_path):
        space = tiny_space()
        journal = tmp_path / "dse.jsonl"
        # Simulate an interrupt: only the first candidate was journaled.
        partial = CachedEvaluator(fingerprint=campaign_fingerprint(
            space, GridSearch().signature()), journal_path=journal)
        partial.evaluate(space.expand(space.candidates()[0]))
        assert partial.n_simulated == 2  # baseline + first config

        result = Campaign(space, GridSearch(), journal_path=journal,
                          resume=True).run()
        assert result.n_resumed == 2
        assert result.n_simulated == 1  # only the second config
        assert len(result.summaries) == 2

    def test_resume_with_fresh_journal_is_cold(self, tmp_path):
        space = tiny_space()
        result = Campaign(space, GridSearch(),
                          journal_path=tmp_path / "missing.jsonl",
                          resume=True).run()
        assert result.n_simulated == 3
        assert result.n_resumed == 0


class TestFrontierArtifact:
    def test_shape(self, tmp_path):
        result = Campaign(tiny_space(), GridSearch()).run()
        blob = result.to_json()
        assert blob["schema"] == 1
        assert blob["kind"] == "repro.dse.frontier"
        assert blob["space"] == tiny_space().as_spec()
        assert blob["strategy"] == "grid:0"
        assert blob["objectives"]["eed"] == "max"
        assert len(blob["benchmarks"]) == 2
        for bench in blob["benchmarks"]:
            assert bench["name"].startswith("dse:")
            assert "cycles" in bench["extra_info"]
            assert bench["extra_info"]["on_frontier"] in (0, 1)
        assert blob["failed"] == []
        # Deterministic by construction: no wall-clock, no run counts.
        text = json.dumps(blob)
        assert "wall_s" not in text
        assert "n_simulated" not in text

    def test_compare_runs_compatible(self, tmp_path):
        result = Campaign(tiny_space(), GridSearch()).run()
        path = tmp_path / "frontier.json"
        result.write_json(path)
        report = compare_runs(path, path)
        assert report.clean

    def test_render_table_marks_frontier(self):
        result = Campaign(tiny_space(), GridSearch()).run()
        table = result.render_table()
        assert "cycles" in table
        assert "knee" in table

    def test_render_plot(self):
        result = Campaign(tiny_space(), GridSearch()).run()
        plot = result.render_plot()
        assert "cycles vs area" in plot
        assert "@" in plot  # the knee marker


class TestPaperSpaceFrontier:
    def test_paper_choice_on_frontier(self):
        # The acceptance criterion of the ported example, held as a
        # regression: on the paper's own design walk (Table IV tiles x
        # Fig. 22 DPG counts on 'cant' under SpMV + SpGEMM) the native
        # tile=4 dominates the bridged tiles and the paper's choice
        # {tile=4, num_dpgs=8} sits on the frontier.
        result = Campaign(default_space(), GridSearch()).run()
        frontier = result.frontier_knobs()
        assert {"tile": 4, "num_dpgs": 8} in frontier
        assert all(f["tile"] == 4 for f in frontier)


class TestCampaignFingerprint:
    def test_binds_space_and_strategy(self):
        a = campaign_fingerprint(tiny_space(), "grid:0")
        assert a == campaign_fingerprint(tiny_space(), "grid:0")
        assert a != campaign_fingerprint(tiny_space(), "random:0:8")
        assert a != campaign_fingerprint(tiny_space(kernels=("spgemm",)),
                                         "grid:0")

    def test_mismatched_journal_rejected(self, tmp_path):
        space = tiny_space()
        journal = tmp_path / "dse.jsonl"
        Campaign(space, GridSearch(), journal_path=journal).run()
        with pytest.raises(CheckpointError):
            Campaign(space, make_strategy("random", seed=1, budget=2),
                     journal_path=journal, resume=True).run()

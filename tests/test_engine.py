"""Tests for the simulation engine and reports."""

import numpy as np
import pytest

from repro.arch.base import BlockResult, STCModel
from repro.arch.tasks import T1Task
from repro.arch.unistc import UniSTC
from repro.baselines import DsSTC
from repro.errors import SimulationError
from repro.kernels.batched import TaskBatch
from repro.kernels.taskstream import spgemm_tasks
from repro.kernels.vector import SparseVector
from repro.sim import engine
from repro.sim.blockcache import BlockCache
from repro.sim.results import ComparisonRow, SimReport, compare, geomean

from tests.conftest import make_block_task


class TestMemoisation:
    def test_cache_grows_and_clears(self, banded_bbc, uni):
        engine.clear_cache()
        engine.simulate_kernel("spmv", banded_bbc, uni)
        assert engine.cache_size() > 0
        engine.clear_cache()
        assert engine.cache_size() == 0

    def test_cached_rerun_identical(self, banded_bbc, uni):
        engine.clear_cache()
        first = engine.simulate_kernel("spgemm", banded_bbc, uni)
        second = engine.simulate_kernel("spgemm", banded_bbc, uni)
        assert first.cycles == second.cycles
        assert first.energy_pj == pytest.approx(second.energy_pj)

    def test_models_do_not_share_entries(self, banded_bbc):
        engine.clear_cache()
        engine.simulate_kernel("spmv", banded_bbc, UniSTC())
        size_one = engine.cache_size()
        engine.simulate_kernel("spmv", banded_bbc, DsSTC())
        assert engine.cache_size() > size_one


class TestSimulateTasks:
    def test_weights_scale_linearly(self, uni):
        base = make_block_task(0.3, 0.3, 1)
        heavy = T1Task(base.a_bits, base.b_bits, n=base.n, weight=3)
        engine.clear_cache()
        r1 = engine.simulate_tasks(uni, [base])
        engine.clear_cache()
        r3 = engine.simulate_tasks(uni, [heavy])
        assert r3.cycles == 3 * r1.cycles
        assert r3.products == 3 * r1.products
        assert r3.energy_pj == pytest.approx(3 * r1.energy_pj)
        assert r3.t1_tasks == 3

    def test_empty_stream(self, uni):
        report = engine.simulate_tasks(uni, [])
        assert report.cycles == 0
        assert report.t1_tasks == 0

    def test_no_energy_model(self, uni):
        report = engine.simulate_tasks(uni, [make_block_task(0.3, 0.3, 2)], energy_model=None)
        assert report.energy_pj == 0.0
        assert report.energy_breakdown == {}


class TestSimulateKernel:
    def test_spgemm_task_totals(self, banded_bbc, uni):
        report = engine.simulate_kernel("spgemm", banded_bbc, uni)
        tasks = list(spgemm_tasks(banded_bbc, banded_bbc))
        assert report.t1_tasks == len(tasks)
        assert report.products == sum(t.intermediate_products() for t in tasks)

    def test_spmspv_operand_forwarded(self, banded_bbc, uni):
        x = SparseVector(banded_bbc.shape[1], [0, 64], [1.0, 1.0])
        report = engine.simulate_kernel("spmspv", banded_bbc, uni, x=x)
        full = engine.simulate_kernel("spmv", banded_bbc, uni)
        assert report.t1_tasks <= full.t1_tasks

    def test_matrix_label(self, banded_bbc, uni):
        report = engine.simulate_kernel("spmv", banded_bbc, uni, matrix="band")
        assert report.matrix == "band"

    def test_energy_breakdown_populated(self, banded_bbc, uni):
        report = engine.simulate_kernel("spmv", banded_bbc, uni)
        assert report.energy_pj > 0
        assert report.energy_pj == pytest.approx(sum(report.energy_breakdown.values()))


class _WeightSensitiveSTC(STCModel):
    """Misbehaving model whose block result leaks the task weight.

    Real models are weight-independent, so the historic bug of handing
    the coalesced aggregate weight to ``simulate_blocks`` was invisible
    with them; this model makes it observable."""

    name = "weight-spy"

    def simulate_block(self, task):
        result = BlockResult(cycles=10 * task.weight, products=task.weight)
        result.counters.add("mac_ops", 7 * task.weight)
        return result

    @property
    def macs(self):
        return 64


def _single_pair_batch(weights, n=16):
    rng = np.random.default_rng(21)
    a = (rng.random((1, 16, 16)) < 0.3)
    b = (rng.random((1, 16, n)) < 0.3)
    idx = np.zeros(len(weights), dtype=np.int64)
    return TaskBatch(
        a_patterns=a, b_patterns=b, a_index=idx, b_index=idx,
        weights=np.asarray(weights, dtype=np.int64), n=n,
    )


class TestBatchedAggregation:
    def test_cache_misses_simulated_at_unit_weight(self):
        """The memoised block result must never absorb stream weights:
        the model sees weight=1, aggregation applies the weight."""
        stc = _WeightSensitiveSTC()
        cache = BlockCache()
        batch = _single_pair_batch([2, 3])  # coalesces to one pair, weight 5
        report = engine.simulate_batches(stc, [batch], cache=cache, energy_model=None)
        (cached,) = cache.values()
        assert cached.cycles == 10 and cached.products == 1
        assert report.cycles == 50 and report.products == 5
        assert report.t1_tasks == 5
        assert report.counters.get("mac_ops") == 35
        # And it matches the ground truth: the stream fully expanded to
        # five unit-weight tasks (weights exist only as a compression).
        expanded = [
            T1Task(task.a_bits, task.b_bits, n=task.n, weight=1)
            for task in batch.iter_tasks() for _ in range(task.weight)
        ]
        reference = engine.simulate_tasks(
            stc, expanded, cache=BlockCache(), energy_model=None
        )
        assert report.cycles == reference.cycles
        assert report.counters.as_dict() == reference.counters.as_dict()

    def test_int64_aggregation_exact_past_2_53(self):
        """Weighted totals beyond float64's 2^53 integer range stay
        exact: float64 accumulation would round them silently."""
        weight = (1 << 53) + 1
        batch = _single_pair_batch([weight])
        stc = UniSTC()
        report = engine.simulate_batches(stc, [batch], cache=BlockCache())
        block = stc.simulate_block(next(iter(batch.iter_tasks())))
        assert block.products % 2 == 1  # odd, so the product below is odd
        exact = block.products * weight  # python ints: exact
        assert float(exact) != exact  # float64 could not have held this
        assert report.products == exact
        assert report.cycles == block.cycles * weight
        assert report.t1_tasks == weight
        assert np.array_equal(
            report.util_hist.bins,
            np.asarray(block.util_hist.bins, dtype=object) * weight,
        )

    def test_batched_totals_equal_per_task_reference(self, uni):
        batch = _single_pair_batch([1, 4, 2])
        fast = engine.simulate_batches(uni, [batch], cache=BlockCache())
        slow = engine.simulate_tasks(uni, batch.iter_tasks(), cache=BlockCache())
        assert fast.cycles == slow.cycles
        assert fast.products == slow.products
        assert fast.t1_tasks == slow.t1_tasks
        assert np.array_equal(fast.util_hist.bins, slow.util_hist.bins)
        assert fast.counters.as_dict() == slow.counters.as_dict()
        assert fast.energy_breakdown == slow.energy_breakdown

    def test_float_fallback_for_fractional_counters(self):
        class FractionalSTC(STCModel):
            name = "fractional"

            def simulate_block(self, task):
                result = BlockResult(cycles=4, products=2)
                result.counters.add("mac_ops", 1.5)
                return result

            @property
            def macs(self):
                return 64

        report = engine.simulate_batches(
            FractionalSTC(), [_single_pair_batch([3])],
            cache=BlockCache(), energy_model=None,
        )
        assert report.cycles == 12
        assert report.counters.get("mac_ops") == pytest.approx(4.5)


class TestSimReport:
    def test_speedup_and_energy_vs(self):
        fast = SimReport(stc="a", kernel="spmv", cycles=50, energy_pj=10.0)
        slow = SimReport(stc="b", kernel="spmv", cycles=100, energy_pj=30.0)
        assert fast.speedup_vs(slow) == 2.0
        assert fast.energy_reduction_vs(slow) == 3.0
        assert fast.energy_efficiency_vs(slow) == 6.0

    def test_speedup_of_empty_rejected(self):
        empty = SimReport(stc="a", kernel="spmv")
        other = SimReport(stc="b", kernel="spmv", cycles=10, energy_pj=1.0)
        with pytest.raises(SimulationError):
            empty.speedup_vs(other)

    def test_mean_utilisation(self, banded_bbc, uni):
        report = engine.simulate_kernel("spgemm", banded_bbc, uni)
        assert 0.0 < report.mean_utilisation <= 1.0

    def test_products_per_task(self):
        report = SimReport(stc="a", kernel="spmv", products=100, t1_tasks=4)
        assert report.products_per_task == 25.0


class TestGeomeanCompare:
    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_empty(self):
        with pytest.raises(SimulationError):
            geomean([])

    def test_geomean_rejects_non_positive(self):
        with pytest.raises(SimulationError):
            geomean([1.0, 0.0])

    def test_compare_row(self):
        ours = [SimReport(stc="u", kernel="k", cycles=10, energy_pj=5.0),
                SimReport(stc="u", kernel="k", cycles=20, energy_pj=10.0)]
        base = [SimReport(stc="d", kernel="k", cycles=40, energy_pj=10.0),
                SimReport(stc="d", kernel="k", cycles=20, energy_pj=20.0)]
        row = compare(ours, base, "ds-stc")
        assert isinstance(row, ComparisonRow)
        assert row.max_speedup == 4.0
        assert row.avg_speedup == pytest.approx(2.0)
        assert row.avg_efficiency == pytest.approx(row.avg_speedup * row.avg_energy_reduction)

    def test_compare_rejects_mismatch(self):
        with pytest.raises(SimulationError):
            compare([], [], "x")

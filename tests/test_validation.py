"""Failure injection: corrupted structures and invalid inputs must be
rejected loudly, never silently mis-simulated."""

import numpy as np
import pytest

from repro.arch.base import BlockResult
from repro.errors import ConfigError, FormatError, ReproError, SimulationError
from repro.formats import BBCMatrix, COOMatrix


@pytest.fixture
def valid_bbc(rng):
    dense = rng.random((48, 48)) * (rng.random((48, 48)) < 0.3)
    return BBCMatrix.from_dense(dense)


def _rebuild(bbc, **overrides):
    fields = dict(
        shape=bbc.shape,
        row_ptr=bbc.row_ptr,
        col_idx=bbc.col_idx,
        bitmap_lv1=bbc.bitmap_lv1,
        tile_ptr=bbc.tile_ptr,
        bitmap_lv2=bbc.bitmap_lv2,
        val_ptr_lv1=bbc.val_ptr_lv1,
        val_ptr_lv2=bbc.val_ptr_lv2,
        values=bbc.values,
    )
    fields.update(overrides)
    return BBCMatrix(
        fields["shape"], fields["row_ptr"], fields["col_idx"], fields["bitmap_lv1"],
        fields["tile_ptr"], fields["bitmap_lv2"], fields["val_ptr_lv1"],
        fields["val_ptr_lv2"], fields["values"],
    )


class TestCorruptedBBC:
    def test_truncated_row_ptr(self, valid_bbc):
        with pytest.raises(FormatError):
            _rebuild(valid_bbc, row_ptr=valid_bbc.row_ptr[:-1])

    def test_row_ptr_wrong_terminal(self, valid_bbc):
        bad = valid_bbc.row_ptr.copy()
        bad[-1] += 1
        with pytest.raises(FormatError):
            _rebuild(valid_bbc, row_ptr=bad)

    def test_missing_lv2_bitmap(self, valid_bbc):
        with pytest.raises(FormatError):
            _rebuild(valid_bbc, bitmap_lv2=valid_bbc.bitmap_lv2[:-1])

    def test_extra_values(self, valid_bbc):
        with pytest.raises(FormatError):
            _rebuild(valid_bbc, values=np.concatenate([valid_bbc.values, [1.0]]))

    def test_val_ptr_terminal_mismatch(self, valid_bbc):
        bad = valid_bbc.val_ptr_lv1.copy()
        bad[-1] -= 1
        with pytest.raises(FormatError):
            _rebuild(valid_bbc, val_ptr_lv1=bad)

    def test_cleared_lv2_bit_detected(self, valid_bbc):
        """Dropping one element bit breaks the popcount==nnz invariant."""
        bad = valid_bbc.bitmap_lv2.copy()
        target = np.flatnonzero(bad)[0]
        bit = int(bad[target])
        bad[target] = bit & (bit - 1)  # clear lowest set bit
        with pytest.raises(FormatError):
            _rebuild(valid_bbc, bitmap_lv2=bad)

    def test_tile_ptr_wrong_length(self, valid_bbc):
        with pytest.raises(FormatError):
            _rebuild(valid_bbc, tile_ptr=valid_bbc.tile_ptr[:-1])


class TestBlockResultValidation:
    def test_negative_cycles_rejected(self):
        with pytest.raises(SimulationError):
            BlockResult(cycles=-1, products=0)

    def test_negative_products_rejected(self):
        with pytest.raises(SimulationError):
            BlockResult(cycles=1, products=-5)


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro.errors import ConvergenceError, ShapeError

        for exc in (FormatError, ShapeError, ConfigError, SimulationError, ConvergenceError):
            assert issubclass(exc, ReproError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            COOMatrix((2, 2), [5], [0], [1.0])


class TestPaddingEdges:
    """Matrices whose shapes straddle block boundaries must stay exact."""

    @pytest.mark.parametrize("shape", [(1, 1), (15, 17), (16, 16), (17, 15), (33, 1)])
    def test_boundary_shapes(self, shape, rng):
        dense = rng.random(shape) * (rng.random(shape) < 0.5)
        bbc = BBCMatrix.from_dense(dense)
        assert bbc.to_dense().shape == shape
        assert np.allclose(bbc.to_dense(), dense)

    def test_padding_never_simulated(self, rng):
        """Padding cells past the true shape contribute zero products."""
        from repro.arch.unistc import UniSTC
        from repro.sim.engine import simulate_kernel

        dense = np.zeros((17, 17))
        dense[16, 16] = 1.0
        bbc = BBCMatrix.from_dense(dense)
        report = simulate_kernel("spmv", bbc, UniSTC())
        assert report.products == 1

    def test_block_count_for_boundary(self):
        coo = COOMatrix((17, 17), [0, 16], [0, 16], [1.0, 1.0])
        bbc = BBCMatrix.from_coo(coo)
        assert bbc.nblocks == 2
        assert bbc.block_rows == 2

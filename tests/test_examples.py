"""Smoke tests: the example scripts must run end to end."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "numerics OK" in out
        assert "uni-stc" in out
        assert "round-trip OK" in out

    def test_design_space(self, capsys):
        out = _run("design_space.py", capsys)
        assert "selected tile size: 4" in out
        assert "Total Overhead" in out
        # The repro.dse port: the paper's design point survives the
        # searched frontier, and the campaign reports its bookkeeping.
        assert "paper's choice tile=4, num_dpgs=8: on the frontier" in out
        assert "knee point:" in out
        assert "baselines hoisted per cell" in out

    def test_uwmma_walkthrough(self, capsys):
        out = _run("uwmma_walkthrough.py", capsys)
        assert "cycle 0" in out
        assert "UWMMA program" in out
        assert "overlap efficiency" in out

    def test_format_explorer(self, capsys, monkeypatch):
        monkeypatch.setattr("sys.argv", ["format_explorer.py"])
        out = _run("format_explorer.py", capsys)
        assert "recommended format: bbc" in out
        assert "break-even" in out
        assert "round trips OK" in out

    @pytest.mark.slow
    def test_amg_solver(self, capsys):
        out = _run("amg_solver.py", capsys)
        assert "converged" in out
        assert "speedup vs DS-STC" in out

    @pytest.mark.slow
    def test_dnn_inference(self, capsys):
        out = _run("dnn_inference.py", capsys)
        assert "numeric check" in out

    @pytest.mark.slow
    def test_graph_analytics(self, capsys):
        out = _run("graph_analytics.py", capsys)
        assert "BFS from vertex 0" in out
        assert "two-hop" in out

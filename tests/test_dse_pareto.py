"""Tests for dominance, frontier and knee extraction (repro.dse.pareto)."""

import pytest

from repro.dse.pareto import (
    OBJECTIVES,
    dominates,
    knee_index,
    pareto_front,
    pareto_indices,
)
from repro.errors import ConfigError


def obj(cycles, energy=1.0, area=1.0, eed=1.0):
    return {"cycles": cycles, "energy_pj": energy, "area_mm2": area,
            "eed": eed}


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates(obj(1, 1, 1, 2), obj(2, 2, 2, 1))

    def test_better_on_one_axis_ties_elsewhere(self):
        assert dominates(obj(1), obj(2))

    def test_equal_vectors_do_not_dominate(self):
        assert not dominates(obj(1), obj(1))

    def test_trade_off_means_no_dominance(self):
        a, b = obj(1, energy=2), obj(2, energy=1)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_max_axis_is_negated(self):
        # Higher EED is better: a wins despite identical min axes.
        assert dominates(obj(1, eed=2), obj(1, eed=1))
        assert not dominates(obj(1, eed=1), obj(1, eed=2))

    def test_missing_objective_rejected(self):
        with pytest.raises(ConfigError):
            dominates({"cycles": 1}, obj(2))


class TestParetoIndices:
    def test_single_candidate(self):
        assert pareto_indices([obj(1)]) == [0]

    def test_dominated_dropped(self):
        front = pareto_indices([obj(1), obj(2), obj(3)])
        assert front == [0]

    def test_trade_off_chain_all_kept(self):
        cands = [obj(1, energy=3), obj(2, energy=2), obj(3, energy=1)]
        assert pareto_indices(cands) == [0, 1, 2]

    def test_duplicates_all_stay(self):
        cands = [obj(1), obj(1), obj(2)]
        assert pareto_indices(cands) == [0, 1]

    def test_order_preserved(self):
        cands = [obj(3, energy=1), obj(2, energy=2), obj(1, energy=3)]
        assert pareto_indices(cands) == [0, 1, 2]
        assert pareto_indices(list(reversed(cands))) == [0, 1, 2]


class TestKneeIndex:
    def test_balanced_point_wins(self):
        # (1, 9), (5, 5), (9, 1): the middle point is nearest utopia.
        cands = [obj(1, energy=9), obj(5, energy=5), obj(9, energy=1)]
        assert knee_index(cands, [0, 1, 2]) == 1

    def test_tie_breaks_to_earlier_index(self):
        cands = [obj(1, energy=9), obj(9, energy=1)]
        assert knee_index(cands, [0, 1]) == 0

    def test_degenerate_axes_contribute_nothing(self):
        # Every axis equal: distance is zero for all, first frontier
        # member wins.
        cands = [obj(1), obj(1), obj(1)]
        assert knee_index(cands, [0, 1, 2]) == 0

    def test_empty_frontier_rejected(self):
        with pytest.raises(ConfigError):
            knee_index([obj(1)], [])

    def test_normalisation_uses_all_candidates(self):
        # The dominated point stretches the cycles axis, pulling the
        # knee towards the low-cycles frontier member.
        cands = [obj(1, energy=2), obj(2, energy=1), obj(100, energy=100)]
        idx = knee_index(cands, [0, 1])
        assert idx == 0


class TestParetoFront:
    def test_combined(self):
        cands = [obj(1, energy=9), obj(5, energy=5), obj(9, energy=1),
                 obj(9, energy=9)]
        result = pareto_front(cands)
        assert result.frontier == (0, 1, 2)
        assert result.knee == 1

    def test_objective_senses(self):
        assert OBJECTIVES == {"cycles": "min", "energy_pj": "min",
                              "area_mm2": "min", "eed": "max"}

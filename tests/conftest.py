"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import FP32, FP64
from repro.arch.unistc import UniSTC
from repro.baselines import DsSTC, Gamma, NvDTC, RmSTC, Sigma, Trapezoid
from repro.formats import BBCMatrix, COOMatrix, CSRMatrix
from repro.workloads.synthetic import banded, poisson2d, random_uniform


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng):
    """A 40x56 dense array with ~25% occupancy."""
    return rng.random((40, 56)) * (rng.random((40, 56)) < 0.25)


@pytest.fixture
def small_coo(small_dense):
    return COOMatrix.from_dense(small_dense)


@pytest.fixture
def small_csr(small_coo):
    return CSRMatrix.from_coo(small_coo)


@pytest.fixture
def small_bbc(small_coo):
    return BBCMatrix.from_coo(small_coo)


@pytest.fixture(scope="session")
def poisson_csr():
    return CSRMatrix.from_coo(poisson2d(16))


@pytest.fixture(scope="session")
def banded_bbc():
    """A medium banded matrix shared by simulator tests."""
    return BBCMatrix.from_coo(banded(128, 12, 0.5, seed=3))


@pytest.fixture(scope="session")
def random_bbc():
    return BBCMatrix.from_coo(random_uniform(128, 128, 0.05, seed=4))


@pytest.fixture
def uni():
    return UniSTC()


@pytest.fixture(params=["nv-dtc", "gamma", "sigma", "trapezoid", "ds-stc", "rm-stc", "uni-stc"])
def any_stc(request):
    """Every simulated architecture, FP64."""
    return {
        "nv-dtc": NvDTC,
        "gamma": Gamma,
        "sigma": Sigma,
        "trapezoid": Trapezoid,
        "ds-stc": DsSTC,
        "rm-stc": RmSTC,
        "uni-stc": UniSTC,
    }[request.param]()


@pytest.fixture(params=[FP64, FP32])
def precision(request):
    return request.param


def make_block_task(a_density: float, b_density: float, seed: int = 0, n: int = 16):
    """Helper used across simulator tests: a random T1 task."""
    from repro.arch.tasks import T1Task

    gen = np.random.default_rng(seed)
    a = gen.random((16, 16)) < a_density
    b = gen.random((16, n)) < b_density
    return T1Task.from_bitmaps(a, b)

"""Tests for the BSR container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError
from repro.formats import BSRMatrix, COOMatrix, CSRMatrix


class TestConstruction:
    def test_roundtrip(self, small_coo):
        m = BSRMatrix.from_coo(small_coo, 4)
        rows, cols = small_coo.shape
        assert np.allclose(m.to_dense()[:rows, :cols], small_coo.to_dense())

    def test_shape_padded_to_block_multiple(self):
        coo = COOMatrix((5, 7), [0], [0], [1.0])
        m = BSRMatrix.from_coo(coo, 4)
        assert m.shape == (8, 8)

    def test_nnz_excludes_padding(self, small_coo):
        m = BSRMatrix.from_coo(small_coo, 4)
        assert m.nnz == small_coo.nnz

    def test_nblocks_counts_stored_blocks(self):
        coo = COOMatrix((8, 8), [0, 7], [0, 7], [1.0, 1.0])
        m = BSRMatrix.from_coo(coo, 4)
        assert m.nblocks == 2

    def test_invalid_block_size(self):
        with pytest.raises(FormatError):
            BSRMatrix((4, 4), 0, [0, 0], [], np.zeros((0, 0, 0)))

    def test_blocks_shape_validated(self):
        with pytest.raises(FormatError):
            BSRMatrix((4, 4), 4, [0, 1], [0], np.zeros((1, 2, 4)))

    @given(st.integers(1, 30), st.integers(0, 300), st.sampled_from([2, 4, 8, 16]))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_random(self, n, seed, block):
        rng = np.random.default_rng(seed)
        dense = rng.random((n, n)) * (rng.random((n, n)) < 0.2)
        m = BSRMatrix.from_coo(COOMatrix.from_dense(dense), block)
        assert np.allclose(m.to_dense()[:n, :n], dense)


class TestStorage:
    def test_padding_counts_as_overhead(self):
        # One nonzero in a 4x4 block: 15 padded zeros stored.
        coo = COOMatrix((4, 4), [0], [0], [1.0])
        m = BSRMatrix.from_coo(coo, 4)
        assert m.metadata_bytes() == (2 + 1) * 4 + 15 * 8

    def test_bsr_worse_than_csr_on_scattered(self):
        """The paper's Fig. 15 observation: BSR usually loses to CSR."""
        rng = np.random.default_rng(0)
        dense = rng.random((64, 64)) * (rng.random((64, 64)) < 0.02)
        coo = COOMatrix.from_dense(dense)
        bsr = BSRMatrix.from_coo(coo, 4)
        csr = CSRMatrix.from_coo(coo)
        assert bsr.metadata_bytes() > csr.metadata_bytes()

    def test_bsr_competitive_on_dense_blocks(self):
        dense = np.ones((16, 16))
        coo = COOMatrix.from_dense(dense)
        bsr = BSRMatrix.from_coo(coo, 4)
        csr = CSRMatrix.from_coo(coo)
        assert bsr.metadata_bytes() < csr.metadata_bytes()

    def test_storage_total(self):
        coo = COOMatrix((4, 4), [0], [0], [1.0])
        m = BSRMatrix.from_coo(coo, 4)
        assert m.storage_bytes() == (2 + 1) * 4 + 16 * 8

"""Tests for the network geometry and the energy model."""

import pytest

from repro.arch.counters import Counters
from repro.arch.network import (
    MONOLITHIC_PATH,
    UNI_A_PATH,
    UNI_B_PATH,
    UNI_C_PATH,
    NetworkPath,
    average_enabled_scale,
    crossbar_transfer_pj,
    uni_network_reductions,
)
from repro.energy.model import (
    DEFAULT_MODEL,
    BREAKDOWN_KEYS,
    DENSE_PROFILE,
    MONOLITHIC_PROFILE,
    UNI_PROFILE,
    EnergyModel,
    EnergyTable,
    profile_for,
)


class TestCrossbar:
    def test_scales_with_size(self):
        assert crossbar_transfer_pj(64, 256) > crossbar_transfer_pj(16, 16)

    def test_sqrt_rule(self):
        assert crossbar_transfer_pj(4, 16) == pytest.approx(2 * crossbar_transfer_pj(4, 4))

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            crossbar_transfer_pj(0, 4)

    def test_path_sums_stages(self):
        path = NetworkPath(((4, 8), (64, 5)))
        expected = crossbar_transfer_pj(4, 8) + crossbar_transfer_pj(64, 5)
        assert path.transfer_pj() == pytest.approx(expected)


class TestUniNetworkReductions:
    def test_all_paths_cheaper_than_monolithic(self):
        mono = MONOLITHIC_PATH.transfer_pj()
        for path in (UNI_A_PATH, UNI_B_PATH, UNI_C_PATH):
            assert path.transfer_pj() < mono

    def test_reductions_ordering_matches_paper(self):
        """Paper §IV-C: A saves most (7.16x), then B (5.33x), then C (2.83x).

        The sqrt-crosspoint model must reproduce the ordering A > B and
        substantial (>2x) reductions for all three.
        """
        red_a, red_b, red_c = uni_network_reductions()
        assert red_a > red_b
        assert min(red_a, red_b, red_c) > 2.0

    def test_enabled_scale(self):
        # 2 active of 8 DPGs over 10 cycles -> 25% of the C network on.
        assert average_enabled_scale(20, 10, 8) == pytest.approx(0.25)
        assert average_enabled_scale(0, 0, 8) == 0.0


class TestProfiles:
    def test_profile_lookup(self):
        assert profile_for("uni-stc") is UNI_PROFILE
        assert profile_for("uni-stc(4dpg)") is UNI_PROFILE
        assert profile_for("nv-dtc") is DENSE_PROFILE
        assert profile_for("ds-stc") is MONOLITHIC_PROFILE
        assert profile_for("rm-stc") is MONOLITHIC_PROFILE

    def test_uni_cheaper_per_element(self):
        assert UNI_PROFILE.c_transfer_pj < MONOLITHIC_PROFILE.c_transfer_pj
        assert UNI_PROFILE.a_transfer_pj < MONOLITHIC_PROFILE.a_transfer_pj


class TestEnergyModel:
    def test_empty_counters_zero_energy(self):
        assert DEFAULT_MODEL.energy_pj(Counters(), "uni-stc") == 0.0

    def test_breakdown_keys(self):
        bd = DEFAULT_MODEL.breakdown(Counters({"mac_ops": 10}), "uni-stc")
        assert set(bd) == set(BREAKDOWN_KEYS)

    def test_mac_energy_in_compute(self):
        bd = DEFAULT_MODEL.breakdown(Counters({"mac_ops": 10}), "uni-stc")
        assert bd["compute"] == pytest.approx(10 * DEFAULT_MODEL.table.mac_op)
        assert bd["read_a"] == 0.0

    def test_c_writes_priced_by_architecture(self):
        counters = Counters({"c_net_transfers": 100})
        uni = DEFAULT_MODEL.energy_pj(counters, "uni-stc")
        mono = DEFAULT_MODEL.energy_pj(counters, "ds-stc")
        assert mono > uni

    def test_total_is_breakdown_sum(self):
        counters = Counters({"mac_ops": 5, "a_elem_reads": 3, "queue_ops": 7})
        bd = DEFAULT_MODEL.breakdown(counters, "rm-stc")
        assert DEFAULT_MODEL.energy_pj(counters, "rm-stc") == pytest.approx(sum(bd.values()))

    def test_gated_cheaper_than_active(self):
        active = DEFAULT_MODEL.energy_pj(Counters({"dpg_active_cycles": 10}), "uni-stc")
        gated = DEFAULT_MODEL.energy_pj(Counters({"dpg_gated_cycles": 10}), "uni-stc")
        assert gated < active / 5

    def test_energy_additive_in_counters(self):
        c1 = Counters({"mac_ops": 5})
        c2 = Counters({"b_elem_reads": 7})
        both = Counters({"mac_ops": 5, "b_elem_reads": 7})
        assert DEFAULT_MODEL.energy_pj(both, "uni-stc") == pytest.approx(
            DEFAULT_MODEL.energy_pj(c1, "uni-stc") + DEFAULT_MODEL.energy_pj(c2, "uni-stc")
        )

    def test_scaled_table(self):
        table = EnergyTable().scaled(2.0)
        assert table.mac_op == pytest.approx(2 * EnergyTable().mac_op)
        model = EnergyModel(table)
        c = Counters({"mac_ops": 3})
        assert model.energy_pj(c, "uni-stc") == pytest.approx(
            2 * DEFAULT_MODEL.energy_pj(c, "uni-stc")
        )

    def test_every_action_priced(self):
        """No counter may fall through the breakdown unpriced."""
        from repro.arch.counters import ACTIONS

        counters = Counters({a: 1 for a in ACTIONS})
        assert DEFAULT_MODEL.energy_pj(counters, "uni-stc") > 0

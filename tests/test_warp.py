"""Tests for the warp-level Algorithm 1/2 executor."""

import numpy as np
import pytest

from repro.arch.warp import (
    WARP_LANES,
    WarpLog,
    shfl_gather,
    validate_log,
    warp_spgemm,
    warp_spmspv,
    warp_spmv,
)
from repro.errors import ShapeError
from repro.formats import BBCMatrix
from repro.kernels.vector import SparseVector
from repro.workloads.synthetic import banded, random_uniform


@pytest.fixture(scope="module")
def matrix_pair():
    dense = banded(96, 10, 0.5, seed=4).to_dense()
    return dense, BBCMatrix.from_dense(dense)


class TestShflGather:
    def test_folds_halves(self):
        ry = np.arange(32, dtype=np.float64)
        out = shfl_gather(ry)
        assert out.shape == (16,)
        assert np.array_equal(out, np.arange(16) + np.arange(16, 32))

    def test_rejects_wrong_width(self):
        with pytest.raises(ShapeError):
            shfl_gather(np.zeros(16))

    def test_warp_constant(self):
        assert WARP_LANES == 32


class TestWarpSpMV:
    def test_matches_dense(self, matrix_pair, rng):
        dense, bbc = matrix_pair
        x = rng.random(96)
        assert np.allclose(warp_spmv(bbc, x), dense @ x)

    def test_matches_for_odd_shapes(self, rng):
        dense = random_uniform(37, 53, 0.3, seed=1).to_dense()
        bbc = BBCMatrix.from_dense(dense)
        x = rng.random(53)
        assert np.allclose(warp_spmv(bbc, x), dense @ x)

    def test_warp_count_does_not_change_result(self, matrix_pair, rng):
        dense, bbc = matrix_pair
        x = rng.random(96)
        for warps in (1, 2, 8):
            assert np.allclose(warp_spmv(bbc, x, n_warps=warps), dense @ x)

    def test_shape_checked(self, matrix_pair):
        _, bbc = matrix_pair
        with pytest.raises(ShapeError):
            warp_spmv(bbc, np.ones(5))

    def test_log_counts(self, matrix_pair, rng):
        _, bbc = matrix_pair
        log = WarpLog()
        warp_spmv(bbc, rng.random(96), n_warps=2, log=log)
        validate_log(log)
        assert log.blocks_processed == bbc.nblocks
        assert log.warps_used == 2
        # One load.a per block; one meta/gen/numeric per block *pair*.
        assert log.opcode_counts["stc.load.a"] == bbc.nblocks
        assert log.opcode_counts["stc.numeric.mv"] >= bbc.nblocks / 2


class TestWarpSpMSpV:
    def test_matches_dense(self, matrix_pair, rng):
        dense, bbc = matrix_pair
        xs = rng.random(96) * (rng.random(96) < 0.5)
        out = warp_spmspv(bbc, SparseVector.from_dense(xs))
        assert np.allclose(out.to_dense(), dense @ xs)

    def test_dead_segments_skipped(self, matrix_pair):
        _, bbc = matrix_pair
        log = WarpLog()
        x = SparseVector(96, [0], [1.0])
        warp_spmspv(bbc, x, log=log)
        live_blocks = sum(1 for _, bcol, _ in bbc.iter_blocks() if bcol == 0)
        assert log.blocks_processed == live_blocks

    def test_length_checked(self, matrix_pair):
        _, bbc = matrix_pair
        with pytest.raises(ShapeError):
            warp_spmspv(bbc, SparseVector(5, [], []))


class TestWarpSpGEMM:
    def test_matches_dense(self, rng):
        da = random_uniform(64, 64, 0.15, seed=2).to_dense()
        db = random_uniform(64, 64, 0.15, seed=3).to_dense()
        a, b = BBCMatrix.from_dense(da), BBCMatrix.from_dense(db)
        out = warp_spgemm(a, b)
        assert np.allclose(out.to_dense(), da @ db)

    def test_self_product(self, matrix_pair):
        dense, bbc = matrix_pair
        assert np.allclose(warp_spgemm(bbc, bbc).to_dense(), dense @ dense)

    def test_agrees_with_bbc_kernel(self, matrix_pair):
        from repro.kernels import bbc_kernels

        _, bbc = matrix_pair
        warp = warp_spgemm(bbc, bbc)
        plain = bbc_kernels.spgemm(bbc, bbc)
        assert np.allclose(warp.to_dense(), plain.to_dense())

    def test_log_matches_task_stream(self, matrix_pair):
        from repro.kernels.taskstream import spgemm_tasks

        _, bbc = matrix_pair
        log = WarpLog()
        warp_spgemm(bbc, bbc, log=log)
        validate_log(log)
        assert log.opcode_counts["stc.numeric.mm"] == len(list(spgemm_tasks(bbc, bbc)))

    def test_inner_mismatch(self, rng):
        a = BBCMatrix.from_dense(rng.random((16, 32)))
        with pytest.raises(ShapeError):
            warp_spgemm(a, a)

    def test_warp_count_invariance(self, matrix_pair):
        dense, bbc = matrix_pair
        for warps in (1, 3, 6):
            out = warp_spgemm(bbc, bbc, n_warps=warps)
            assert np.allclose(out.to_dense(), dense @ dense)

"""Tests for the Dot Product Generator and the SDPU."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arch.dpg import (
    A_BROADCAST_RANGE,
    B_BROADCAST_RANGE,
    DotProductGenerator,
    n_order,
    overlay_patterns,
    z_order,
)
from repro.arch.sdpu import MAX_SEGMENT, SegmentedDotProductUnit
from repro.errors import SimulationError
from repro.formats import bitarray as ba


class TestOverlay:
    def test_dense_tiles_full_patterns(self):
        patterns = overlay_patterns(0xFFFF, 0xFFFF)
        assert all(p == 0xF for row in patterns for p in row)

    def test_empty_tile(self):
        patterns = overlay_patterns(0, 0xFFFF)
        assert all(p == 0 for row in patterns for p in row)

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    @settings(max_examples=30, deadline=None)
    def test_pattern_is_row_and_col_intersection(self, a_bm, b_bm):
        patterns = overlay_patterns(a_bm, b_bm)
        for m in range(4):
            for n in range(4):
                expected = ba.row_mask(a_bm, m) & ba.col_mask(b_bm, n)
                assert patterns[m][n] == expected

    def test_vector_operand(self):
        # B tile is a 4x1 mask: only column 0 exists.
        patterns = overlay_patterns(0xFFFF, 0b1010, n_cols=1)
        assert len(patterns[0]) == 1
        assert patterns[0][0] == 0b1010


class TestFillOrders:
    def test_z_order_covers_all_positions(self):
        assert sorted(z_order()) == [(m, n) for m in range(4) for n in range(4)]

    def test_n_order_covers_all_positions(self):
        assert sorted(n_order()) == [(m, n) for m in range(4) for n in range(4)]

    def test_z_order_b_separation(self):
        """Tasks sharing a B column sit at most 2 apart (broadcast 9)."""
        order = z_order()
        for n in range(4):
            positions = [i for i, (_, col) in enumerate(order) if col == n]
            assert max(np.diff(positions)) <= 2

    def test_z_order_a_adjacency(self):
        """Tasks sharing an A row within a pair group are adjacent."""
        order = z_order()
        for m in range(4):
            positions = [i for i, (row, _) in enumerate(order) if row == m]
            # Two per column pair, adjacent within the pair.
            assert positions[1] - positions[0] == 1

    def test_z_order_vector(self):
        assert z_order(1) == [(m, 0) for m in range(4)]

    def test_broadcast_constants(self):
        assert A_BROADCAST_RANGE == 5   # 4 + 1 (§IV-A.2)
        assert B_BROADCAST_RANGE == 9   # 4 + 4 + 1


class TestDecompose:
    def test_dense_tile(self):
        out = DotProductGenerator().decompose(0xFFFF, 0xFFFF)
        assert len(out.t4_tasks) == 16
        assert out.products == 64
        assert out.c_writes == 16

    def test_empty_tile(self):
        out = DotProductGenerator().decompose(0, 0xFFFF)
        assert not out.t4_tasks
        assert out.products == 0

    def test_rejects_bad_fill_order(self):
        with pytest.raises(ValueError):
            DotProductGenerator("w")

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    @settings(max_examples=30, deadline=None)
    def test_products_match_tile_multiply(self, a_bm, b_bm):
        out = DotProductGenerator().decompose(a_bm, b_bm)
        a = ba.unpack_bits(a_bm, 4, 4)
        b = ba.unpack_bits(b_bm, 4, 4)
        expected = int((a.sum(axis=0) * b.sum(axis=1)).sum())
        assert out.products == expected

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    @settings(max_examples=30, deadline=None)
    def test_fetches_bounded_by_broadcasts(self, a_bm, b_bm):
        out = DotProductGenerator().decompose(a_bm, b_bm)
        assert out.a_elem_fetches <= out.a_broadcasts
        assert out.b_elem_fetches <= out.b_broadcasts
        assert out.a_broadcasts == out.products
        assert out.b_broadcasts == out.products

    def test_fig9_task_code(self):
        """A tile pair that produces the paper's '49'-style T4 code."""
        # A row 1 has nonzeros at kk=0 and kk=3; B column 3 is dense.
        a_bm = ba.bitmap_from_rows([0, 0b1001, 0, 0])
        b_bm = 0xFFFF
        out = DotProductGenerator().decompose(a_bm, b_bm)
        codes = {t.code for t in out.t4_tasks}
        # Target = position (1, 3) = 7, pattern = 0b1001 = 9.
        assert (7 << 4) | 0x9 in codes

    def test_vector_tile(self):
        out = DotProductGenerator().decompose(0xFFFF, 0b1111, n_cols=1)
        assert len(out.t4_tasks) == 4
        assert out.products == 16

    def test_z_vs_n_same_products(self):
        for seed in range(5):
            gen = np.random.default_rng(seed)
            a_bm = int(gen.integers(0, 0xFFFF))
            b_bm = int(gen.integers(0, 0xFFFF))
            z = DotProductGenerator("z").decompose(a_bm, b_bm)
            n = DotProductGenerator("n").decompose(a_bm, b_bm)
            assert z.products == n.products
            assert z.c_writes == n.c_writes


class TestSDPU:
    def test_dense_packing(self):
        sdpu = SegmentedDotProductUnit(64)
        batches = sdpu.pack([4] * 16)
        assert len(batches) == 1
        assert batches[0].lanes_used == 64
        assert batches[0].utilisation(64) == 1.0

    def test_overflow_opens_new_batch(self):
        sdpu = SegmentedDotProductUnit(8)
        batches = sdpu.pack([4, 4, 4])
        assert [b.lanes_used for b in batches] == [8, 4]

    def test_segments_never_split(self):
        sdpu = SegmentedDotProductUnit(8)
        batches = sdpu.pack([3, 3, 3])
        assert [b.lanes_used for b in batches] == [6, 3]

    def test_merge_adds(self):
        sdpu = SegmentedDotProductUnit(64)
        batches = sdpu.pack([4, 1, 2])
        assert batches[0].merge_adds == 3 + 0 + 1

    def test_rejects_bad_segment(self):
        sdpu = SegmentedDotProductUnit(64)
        with pytest.raises(SimulationError):
            sdpu.pack([5])
        with pytest.raises(SimulationError):
            sdpu.pack([0])

    def test_rejects_bad_lanes(self):
        with pytest.raises(SimulationError):
            SegmentedDotProductUnit(0)

    def test_write_traffic_pre_merged(self):
        sdpu = SegmentedDotProductUnit(64)
        segments = [4, 4, 2, 1]
        assert sdpu.write_traffic(segments) == 4
        assert sdpu.unmerged_write_traffic(segments) == 11

    def test_max_segment_matches_tree(self):
        assert MAX_SEGMENT == 4

    @given(st.lists(st.integers(1, 4), min_size=1, max_size=64))
    @settings(max_examples=30, deadline=None)
    def test_packing_conserves_lanes(self, segments):
        sdpu = SegmentedDotProductUnit(64)
        batches = sdpu.pack(segments)
        assert sum(b.lanes_used for b in batches) == sum(segments)
        assert sum(b.segments for b in batches) == len(segments)
        assert all(b.lanes_used <= 64 for b in batches)

"""Tests for BFS, the GNN layer, and the kernel trace machinery."""

import numpy as np
import pytest

from repro.apps.bfs import bfs, reference_bfs
from repro.apps.gnn import GNNLayer, normalised_adjacency, two_hop
from repro.apps.trace import KernelTrace
from repro.arch.unistc import UniSTC
from repro.errors import ShapeError
from repro.formats.coo import COOMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import reference
from repro.kernels.vector import SparseVector
from repro.workloads.synthetic import power_law


def _graph(n=96, seed=0):
    coo = power_law(n, avg_row_nnz=4.0, seed=seed)
    # Symmetrise so the graph is undirected and mostly connected.
    sym = CSRMatrix.from_coo(coo)
    return reference.add(sym, sym.transpose())


class TestBFS:
    def test_matches_reference(self):
        adj = _graph()
        for source in (0, 5, 50):
            assert np.array_equal(bfs(adj, source).levels, reference_bfs(adj, source))

    def test_source_level_zero(self):
        adj = _graph(seed=1)
        assert bfs(adj, 3).levels[3] == 0

    def test_unreachable_marked(self):
        # Two disconnected self-loop vertices.
        adj = CSRMatrix.from_dense(np.eye(4))
        result = bfs(adj, 0)
        assert result.levels[0] == 0
        assert (result.levels[1:] == -1).all()

    def test_direction_optimisation_switches(self):
        adj = _graph(seed=2)
        result = bfs(adj, 0, pull_threshold=0.02)
        assert result.push_steps >= 1
        mixed = bfs(adj, 0, pull_threshold=0.5)
        assert mixed.push_steps + mixed.pull_steps >= result.push_steps

    def test_trace_records_vector_kernels(self):
        adj = _graph(seed=3)
        trace = KernelTrace()
        bfs(adj, 0, trace=trace)
        counts = trace.kernel_counts()
        assert set(counts) <= {"spmv", "spmspv"}
        assert sum(counts.values()) >= 1

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            bfs(CSRMatrix.empty((3, 4)), 0)

    def test_rejects_bad_source(self):
        with pytest.raises(ShapeError):
            bfs(CSRMatrix.identity(4), 9)

    def test_reached_count(self):
        adj = _graph(seed=4)
        result = bfs(adj, 0)
        assert result.reached == (result.levels >= 0).sum()


class TestGNN:
    def test_normalised_adjacency_symmetric(self):
        adj = _graph(seed=5)
        a_hat = normalised_adjacency(adj)
        dense = a_hat.to_dense()
        assert np.allclose(dense, dense.T, atol=1e-12)

    def test_normalised_spectrum_bounded(self):
        adj = _graph(seed=6)
        eigs = np.linalg.eigvalsh(normalised_adjacency(adj).to_dense())
        assert eigs.max() <= 1.0 + 1e-9

    def test_forward_matches_dense(self):
        adj = _graph(seed=7)
        a_hat = normalised_adjacency(adj)
        rng = np.random.default_rng(0)
        h = rng.standard_normal((adj.shape[0], 8))
        w = rng.standard_normal((8, 4))
        layer = GNNLayer(a_hat, w)
        expected = np.maximum(a_hat.to_dense() @ h @ w, 0.0)
        assert np.allclose(layer.forward(h), expected)

    def test_forward_records_spmm(self):
        adj = _graph(seed=8)
        layer = GNNLayer(normalised_adjacency(adj), np.eye(4))
        trace = KernelTrace()
        layer.forward(np.ones((adj.shape[0], 4)), trace=trace)
        assert trace.kernel_counts() == {"spmm": 1}

    def test_forward_shape_checked(self):
        adj = _graph(seed=9)
        layer = GNNLayer(normalised_adjacency(adj), np.eye(4))
        with pytest.raises(ShapeError):
            layer.forward(np.ones((3, 4)))

    def test_two_hop_matches_dense(self):
        adj = _graph(seed=10)
        trace = KernelTrace()
        result = two_hop(adj, trace=trace)
        assert np.allclose(result.to_dense(), adj.to_dense() @ adj.to_dense())
        assert trace.kernel_counts() == {"spgemm": 1}


class TestKernelTrace:
    def test_consecutive_identical_merged(self):
        trace = KernelTrace()
        m = CSRMatrix.identity(16)
        trace.record("spmv", m)
        trace.record("spmv", m)
        assert len(trace.ops) == 1
        assert trace.ops[0].count == 2

    def test_distinct_not_merged(self):
        trace = KernelTrace()
        trace.record("spmv", CSRMatrix.identity(16))
        trace.record("spmv", CSRMatrix.identity(16))  # different object
        assert len(trace.ops) == 2

    def test_replay_scales_with_count(self):
        m = CSRMatrix.from_coo(COOMatrix((32, 32), [0, 17], [1, 16], [1.0, 2.0]))
        once, thrice = KernelTrace(), KernelTrace()
        once.record("spmv", m, count=1)
        thrice.record("spmv", m, count=3)
        uni = UniSTC()
        assert thrice.replay_total_cycles(uni) == 3 * once.replay_total_cycles(uni)

    def test_replay_spmspv(self):
        m = CSRMatrix.identity(32)
        trace = KernelTrace()
        trace.record("spmspv", m, x=SparseVector(32, [0], [1.0]))
        reports = trace.replay(UniSTC())
        assert "spmspv" in reports
        assert reports["spmspv"].cycles >= 1

    def test_replay_aggregates_per_kernel(self):
        m = CSRMatrix.identity(32)
        trace = KernelTrace()
        trace.record("spmv", m)
        trace.record("spgemm", m, b=m)
        reports = trace.replay(UniSTC())
        assert set(reports) == {"spmv", "spgemm"}
        assert all(r.energy_pj > 0 for r in reports.values())

"""Per-subcommand smoke tests: every CLI run emits a run manifest."""

import json

import pytest

from repro.cli import main


def _manifests(run_dir):
    return sorted(run_dir.glob("*.json"))


def _run(tmp_path, argv, expect=0):
    run_dir = tmp_path / "runs"
    assert main(argv + ["--run-dir", str(run_dir)]) == expect
    paths = _manifests(run_dir)
    assert paths, f"no run manifest written for {argv!r}"
    manifest = json.loads(paths[-1].read_text())
    assert manifest["kind"] == "repro.run"
    assert manifest["command"] == argv[0]
    assert manifest["fingerprint"]
    return manifest


def test_info(tmp_path, capsys):
    manifest = _run(tmp_path, ["info"])
    assert manifest["status"] == "ok"


def test_formats(tmp_path, capsys):
    _run(tmp_path, ["formats", "--matrix", "band:64:8:0.5"])


def test_area(tmp_path, capsys):
    _run(tmp_path, ["area", "--dpgs", "8"])


def test_trace(tmp_path, capsys):
    manifest = _run(tmp_path, ["trace", "--cycles", "2", "--seed", "5"])
    assert manifest["seed"] == 5


def test_kernels(tmp_path, capsys):
    manifest = _run(tmp_path, ["kernels", "--matrix", "band:64:6:0.5",
                               "--kernel", "spmv", "--stc", "ds-stc,uni-stc"])
    assert manifest["params"]["stc"] == "ds-stc,uni-stc"


def test_kernels_error_still_writes_manifest(tmp_path, capsys):
    manifest = _run(tmp_path, ["kernels", "--matrix", "nope:1"], expect=2)
    assert manifest["status"] == "error"
    assert manifest["exit_code"] == 2
    assert "nope" in manifest["error"]


def test_profile(tmp_path, capsys):
    _run(tmp_path, ["profile", "--matrix", "band:64:8:0.5",
                    "--kernel", "spmv", "--stc", "uni-stc"])


def test_amg(tmp_path, capsys):
    _run(tmp_path, ["amg", "--grid", "10", "--stc", "ds-stc,uni-stc"])


def test_corpus(tmp_path, capsys):
    manifest = _run(tmp_path, ["corpus", "--limit", "2", "--kernel", "spmv",
                               "--stc", "ds-stc,uni-stc"])
    assert manifest["params"]["limit"] == 2


def test_faults(tmp_path, capsys):
    _run(tmp_path, ["faults", "--matrix", "band:64:8:0.4",
                    "--trials", "4", "--kinds", "lv1_bitflip"])


def test_bench(tmp_path, capsys):
    _run(tmp_path, ["bench", "--smoke", "--repeat", "1"])


def test_dse(tmp_path, capsys):
    space = tmp_path / "space.json"
    space.write_text(json.dumps({"config": {"num_dpgs": [4, 8]},
                                 "matrices": ["band:64:8:0.5"],
                                 "kernels": ["spmv"]}))
    manifest = _run(tmp_path, ["dse", "--space", str(space)])
    assert manifest["params"]["strategy"] == "grid"


def test_report(tmp_path, capsys):
    run = tmp_path / "bench.json"
    run.write_text(json.dumps({"benchmarks": [
        {"name": "test_fig18_io_energy", "extra_info": {"write_c_gap": 7.0}},
    ]}))
    _run(tmp_path, ["report", str(run)])


def test_paper(tmp_path, capsys, monkeypatch):
    calls = []
    monkeypatch.setattr("subprocess.call", lambda cmd: calls.append(cmd) or 0)
    _run(tmp_path, ["paper", "--filter", "nothing_matches"])
    assert calls and "--benchmark-only" in calls[0]


def test_manifest_dir_can_be_disabled(tmp_path, capsys):
    assert main(["info", "--run-dir", ""]) == 0
    assert not (tmp_path / "runs").exists()


@pytest.mark.parametrize("stc", ["ds-stc", "gamma", "nv-dtc", "nv-dtc-2:4",
                                 "rm-stc", "sigma", "trapezoid", "uni-stc"])
def test_every_registry_stc_is_a_valid_cli_choice(tmp_path, capsys, stc):
    _run(tmp_path, ["kernels", "--matrix", "band:64:8:0.5",
                    "--kernel", "spmv", "--stc", stc])

"""Tests for the declarative design-space layer (repro.dse.space)."""

import pytest

from repro.dse.space import (
    KERNELS,
    KNOWN_KNOBS,
    SIMULATED_TILE,
    DesignPoint,
    DesignSpace,
    default_space,
)
from repro.errors import ConfigError


def small_space() -> DesignSpace:
    return DesignSpace.build(
        config_axes={"num_dpgs": [4, 8], "tile": [2, 4]},
        matrices=["band:64:8:0.5"],
        kernels=["spmv"],
    )


class TestDesignPoint:
    def test_config_materialises(self):
        p = DesignPoint(matrix="rep:cant", kernel="spmv",
                        knobs=(("num_dpgs", 16), ("tile", 4)))
        cfg = p.config()
        assert cfg.num_dpgs == 16
        assert cfg.tile == 4
        # Unswept queue depth widens to hold one task per DPG.
        assert cfg.tile_queue_depth >= cfg.num_dpgs

    def test_precision_resolved_by_name(self):
        p = DesignPoint(matrix="rep:cant", kernel="spmv",
                        knobs=(("precision", "fp32"),))
        assert p.config().macs == 128

    def test_invalid_combination_raises(self):
        p = DesignPoint(matrix="rep:cant", kernel="spmv",
                        knobs=(("block", 16), ("tile", 5)))
        with pytest.raises(ConfigError):
            p.config()

    def test_stc_name_and_key_stable(self):
        p = DesignPoint(matrix="rep:cant", kernel="spmv",
                        knobs=(("num_dpgs", 8), ("tile", 4)))
        assert p.stc_name() == "uni-stc[num_dpgs=8,tile=4]"
        assert p.key() == "uni-stc[num_dpgs=8,tile=4]|spmv|rep:cant"

    def test_as_json_round_trip(self):
        p = DesignPoint(matrix="rep:cant", kernel="spgemm",
                        knobs=(("num_dpgs", 4),))
        blob = p.as_json()
        assert blob == {"matrix": "rep:cant", "kernel": "spgemm",
                        "knobs": {"num_dpgs": 4}}


class TestDesignSpaceBuild:
    def test_axes_sorted_and_coerced(self):
        space = DesignSpace.build(
            config_axes={"tile": ["4", 2], "num_dpgs": [8]},
            matrices=["rep:cant"], kernels=["spmv"],
        )
        assert space.config_axes == (("num_dpgs", (8,)), ("tile", (4, 2)))

    def test_duplicate_values_collapse(self):
        space = DesignSpace.build(
            config_axes={"num_dpgs": [8, "8", 8]},
            matrices=["rep:cant"], kernels=["spmv"],
        )
        assert space.config_axes == (("num_dpgs", (8,)),)

    def test_unknown_knob_rejected(self):
        with pytest.raises(ConfigError):
            DesignSpace.build(config_axes={"warp_size": [32]},
                              matrices=["rep:cant"], kernels=["spmv"])

    def test_unknown_precision_rejected(self):
        with pytest.raises(ConfigError):
            DesignSpace.build(config_axes={"precision": ["bf16"]},
                              matrices=["rep:cant"], kernels=["spmv"])

    def test_invalid_combination_rejected_up_front(self):
        # tile=8 does not divide block=12: caught at build time.
        with pytest.raises(ConfigError):
            DesignSpace.build(config_axes={"block": [12], "tile": [8]},
                              matrices=["rep:cant"], kernels=["spmv"])

    def test_needs_workloads(self):
        with pytest.raises(ConfigError):
            DesignSpace.build(config_axes={}, matrices=[], kernels=["spmv"])
        with pytest.raises(ConfigError):
            DesignSpace.build(config_axes={}, matrices=["rep:cant"], kernels=[])

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError):
            DesignSpace.build(config_axes={}, matrices=["rep:cant"],
                              kernels=["gemm"])

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigError):
            DesignSpace.build(config_axes={"tile": []},
                              matrices=["rep:cant"], kernels=["spmv"])


class TestDesignSpaceSpec:
    def test_round_trip(self):
        space = small_space()
        again = DesignSpace.from_spec(space.as_spec())
        assert again == space
        assert again.fingerprint() == space.fingerprint()

    def test_scalar_axis_promoted_to_list(self):
        space = DesignSpace.from_spec({
            "config": {"num_dpgs": 8},
            "matrices": ["rep:cant"], "kernels": ["spmv"],
        })
        assert space.config_axes == (("num_dpgs", (8,)),)

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigError):
            DesignSpace.from_spec({"configs": {}, "matrices": ["rep:cant"],
                                   "kernels": ["spmv"]})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError):
            DesignSpace.from_spec([1, 2])
        with pytest.raises(ConfigError):
            DesignSpace.from_spec({"config": [1], "matrices": ["rep:cant"],
                                   "kernels": ["spmv"]})

    def test_fingerprint_tracks_definition(self):
        a = small_space()
        b = DesignSpace.build(
            config_axes={"num_dpgs": [4, 8], "tile": [2, 4]},
            matrices=["band:64:8:0.5"],
            kernels=["spgemm"],
        )
        assert a.fingerprint() != b.fingerprint()


class TestDesignSpaceEnumeration:
    def test_sizes(self):
        space = small_space()
        assert space.n_configs == 4
        assert space.size == 4

    def test_candidates_deterministic(self):
        space = small_space()
        assert space.candidates() == space.candidates()
        assert space.candidates()[0] == (("num_dpgs", 4), ("tile", 2))

    def test_expand_covers_all_cells(self):
        space = DesignSpace.build(
            config_axes={"num_dpgs": [8]},
            matrices=["band:64:8:0.5", "rep:cant"],
            kernels=["spmv", "spgemm"],
        )
        points = space.expand((("num_dpgs", 8),))
        assert len(points) == 4
        assert {(p.matrix, p.kernel) for p in points} == {
            ("band:64:8:0.5", "spmv"), ("band:64:8:0.5", "spgemm"),
            ("rep:cant", "spmv"), ("rep:cant", "spgemm"),
        }

    def test_points_order_groups_configs(self):
        space = small_space()
        points = space.points()
        assert len(points) == space.size
        assert [p.knobs for p in points] == [c for c in space.candidates()]

    def test_neighbours_one_axis_step(self):
        space = small_space()
        combo = (("num_dpgs", 4), ("tile", 2))
        neigh = space.neighbours(combo)
        assert (("num_dpgs", 8), ("tile", 2)) in neigh
        assert (("num_dpgs", 4), ("tile", 4)) in neigh
        assert combo not in neigh
        # Corners of a 2x2 grid have exactly two neighbours.
        assert len(neigh) == 2


class TestDefaultSpace:
    def test_matches_the_paper_walk(self):
        space = default_space()
        assert dict(space.config_axes)["tile"] == (2, 4, 8)
        assert dict(space.config_axes)["num_dpgs"] == (4, 8, 16)
        assert space.kernels == ("spmv", "spgemm")
        assert space.size == 18

    def test_constants(self):
        assert SIMULATED_TILE == 4
        assert "spmv" in KERNELS
        assert "precision" in KNOWN_KNOBS

"""Closed-form cycle cross-checks for GAMMA, SIGMA and the new workloads."""

import numpy as np
import pytest

from repro.apps.amg import AMGSolver
from repro.baselines import Gamma, Sigma
from repro.formats.csr import CSRMatrix
from repro.workloads.synthetic import poisson2d, poisson3d

from tests.conftest import make_block_task


class TestGammaFormula:
    @pytest.mark.parametrize("seed", range(6))
    def test_cycle_formula(self, seed):
        """GAMMA cycles = sum over live K of ceil(live B cols / 4)."""
        task = make_block_task(0.3, 0.3, seed)
        a, b = task.a_bitmap(), task.b_bitmap()
        expected = 0
        for k in range(16):
            if not a[:, k].any():
                continue
            live = int(b[k].sum())
            if live:
                expected += -(-live // 4)
        result = Gamma().simulate_block(task)
        assert result.cycles == max(1, expected)

    def test_empty_rows_do_not_reduce_cycles(self):
        """Two tasks with the same B and different A row occupancy (but
        the same live K set) cost GAMMA the same cycles — it cannot
        bypass empty rows."""
        b = np.ones((16, 16), dtype=bool)
        a_thin = np.zeros((16, 16), dtype=bool)
        a_thin[0, :] = True
        a_fat = np.ones((16, 16), dtype=bool)
        thin = Gamma().simulate_block(make_task(a_thin, b))
        fat = Gamma().simulate_block(make_task(a_fat, b))
        assert thin.cycles == fat.cycles
        assert thin.products < fat.products


def make_task(a, b):
    from repro.arch.tasks import T1Task

    return T1Task.from_bitmaps(a, b)


class TestSigmaFormula:
    @pytest.mark.parametrize("seed", range(6))
    def test_cycle_upper_bound(self, seed):
        """SIGMA cycles <= nonzero rows x ceil(live cols / 4)."""
        task = make_block_task(0.3, 0.3, seed)
        a, b = task.a_bitmap(), task.b_bitmap()
        live_cols = int(b.any(axis=0).sum())
        nz_rows = int(a.any(axis=1).sum())
        bound = max(1, nz_rows * (-(-live_cols // 4) if live_cols else 0))
        assert Sigma().simulate_block(task).cycles <= bound

    def test_row_serial(self):
        """One dense row costs as many cycles as its column chunks."""
        a = np.zeros((16, 16), dtype=bool)
        a[3, :] = True
        b = np.ones((16, 16), dtype=bool)
        result = Sigma().simulate_block(make_task(a, b))
        assert result.cycles == 4  # 16 live cols / 4-wide groups


class TestPoissonGenerators:
    def test_poisson3d_structure(self):
        m = poisson3d(3)
        dense = m.to_dense()
        assert dense.shape == (27, 27)
        assert np.allclose(dense, dense.T)
        assert np.all(np.diag(dense) == 6.0)
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_poisson3d_corner_degree(self):
        m = poisson3d(3)
        row_nnz = CSRMatrix.from_coo(m).row_nnz()
        assert row_nnz.min() == 4   # corner: diagonal + 3 neighbours
        assert row_nnz.max() == 7   # interior: diagonal + 6 neighbours

    def test_anisotropic_poisson_spd(self):
        m = poisson2d(8, epsilon=0.01)
        dense = m.to_dense()
        assert np.all(np.linalg.eigvalsh(dense) > 0)

    def test_amg_solves_3d(self):
        a = CSRMatrix.from_coo(poisson3d(5))
        solver = AMGSolver(a)
        rng = np.random.default_rng(0)
        b = rng.random(a.shape[0])
        result = solver.solve(b, max_iterations=80)
        assert result.residuals[-1] < 1e-6 * result.residuals[0]

    def test_amg_handles_anisotropy(self):
        a = CSRMatrix.from_coo(poisson2d(12, epsilon=0.05))
        solver = AMGSolver(a, theta=0.25)
        b = np.ones(a.shape[0])
        result = solver.solve(b, max_iterations=150, tol=1e-6)
        assert result.residuals[-1] < 1e-4 * result.residuals[0]

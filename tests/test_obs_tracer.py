"""Tests for the span tracer, its exporters and the disabled fast path."""

import json
import threading

import pytest

from repro import obs
from repro.obs.tracer import NULL_SPAN, Tracer


@pytest.fixture(autouse=True)
def obs_disabled():
    """Every test starts with a fresh, disabled observability state."""
    obs.enable(fresh=True)
    obs.disable()
    yield
    obs.disable()


class FakeClock:
    """Deterministic monotonic clock advanced by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def tick(self, seconds):
        self.now += seconds


class TestSpans:
    def test_records_duration_and_args(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("work", kernel="spmv"):
            clock.tick(0.002)
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.dur_us == pytest.approx(2000.0)
        assert span.args == {"kernel": "spmv"}
        assert span.depth == 0 and span.parent is None

    def test_nesting_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["middle"].depth == 1
        assert by_name["middle"].parent == "outer"
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent == "middle"
        # Children finish (and are appended) before their parents.
        assert [s.name for s in tracer.spans] == ["inner", "middle", "outer"]

    def test_sibling_spans_share_depth(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["a"].depth == by_name["b"].depth == 1
        assert by_name["a"].parent == by_name["b"].parent == "root"

    def test_exception_annotates_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("risky"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.args["error"] == "ValueError"

    def test_set_attrs_on_live_span(self):
        tracer = Tracer()
        with tracer.span("s") as span:
            span.set(found=3)
        assert tracer.spans[0].args["found"] == 3

    def test_instant_events(self):
        tracer = Tracer()
        tracer.instant("retry", attempt=2)
        (event,) = tracer.events
        assert event.name == "retry" and event.args == {"attempt": 2}

    def test_threads_keep_separate_stacks(self):
        tracer = Tracer()
        done = threading.Event()

        def worker():
            with tracer.span("worker_root"):
                pass
            done.set()

        with tracer.span("main_root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert done.is_set()
        by_name = {s.name: s for s in tracer.spans}
        # The worker's span is a root on its own thread, not a child.
        assert by_name["worker_root"].depth == 0
        assert by_name["worker_root"].parent is None
        assert by_name["worker_root"].tid != by_name["main_root"].tid


class TestDisabledPath:
    def test_span_returns_shared_null_singleton(self):
        assert obs.span("anything", a=1) is NULL_SPAN
        assert obs.span("other") is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with obs.span("x") as span:
            span.set(a=1).event("e")
        # No tracer state was touched.
        assert obs.tracer().spans == []
        assert obs.tracer().events == []

    def test_metric_helpers_no_op(self):
        obs.inc("c", 5)
        obs.set_gauge("g", 1.0)
        obs.observe("h", 0.5)
        snap = obs.metrics().snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enable_records_disable_stops(self):
        obs.enable()
        with obs.span("live"):
            pass
        obs.disable()
        with obs.span("dead"):
            pass
        names = [s.name for s in obs.tracer().spans]
        assert names == ["live"]

    def test_enable_fresh_resets_tracer(self):
        obs.enable()
        with obs.span("old"):
            pass
        obs.enable(fresh=True)
        assert obs.tracer().spans == []

    def test_null_span_cost_is_negligible(self):
        """10k dormant span calls must stay well under 0.1s (<10us each).

        A very loose bound — the measured figure is ~1us — that still
        fails hard if someone accidentally makes the disabled path
        allocate or lock.
        """
        import time

        t0 = time.perf_counter()
        for _ in range(10_000):
            with obs.span("noop", k=1):
                pass
        assert time.perf_counter() - t0 < 0.1


class TestChromeExport:
    def _traced(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("sweep"):
            clock.tick(0.001)
            with tracer.span("matrix", matrix="cant"):
                clock.tick(0.002)
            tracer.instant("retry", attempt=1)
        return tracer

    def test_trace_event_schema(self):
        doc = self._traced().chrome_trace()
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ms"
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(complete) == 2 and len(instants) == 1
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid",
                                  "tid", "args"}
            assert isinstance(event["ts"], float)
            assert event["dur"] >= 0
        assert instants[0]["s"] == "t"  # instant scope is required

    def test_events_sorted_by_timestamp(self):
        doc = self._traced().chrome_trace()
        ts = [e["ts"] for e in doc["traceEvents"]]
        assert ts == sorted(ts)

    def test_written_file_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._traced().write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert {e["name"] for e in doc["traceEvents"]} == {
            "sweep", "matrix", "retry"
        }

    def test_jsonl_export(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        self._traced().write_jsonl(path)
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 3
        spans = [r for r in rows if r["type"] == "span"]
        events = [r for r in rows if r["type"] == "event"]
        assert {s["name"] for s in spans} == {"sweep", "matrix"}
        assert events[0]["name"] == "retry"
        assert all("ts_us" in r for r in rows)


class TestMergeAndSummarise:
    def test_merge_rebases_epochs(self):
        clock = FakeClock()
        main = Tracer(clock=clock)
        clock.tick(1.0)  # worker starts one second later
        worker = Tracer(clock=clock)
        with worker.span("w"):
            clock.tick(0.001)
        main.merge(worker)
        (span,) = main.spans
        # 1s epoch shift shows up in the merged timestamp.
        assert span.ts_us == pytest.approx(1_000_000.0)
        assert span.dur_us == pytest.approx(1000.0)

    def test_summarise_aggregates_and_sorts(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for dur in (0.001, 0.003):
            with tracer.span("hot"):
                clock.tick(dur)
        with tracer.span("cold"):
            clock.tick(0.002)
        rows = tracer.summarise()
        assert [r["name"] for r in rows] == ["hot", "cold"]
        hot = rows[0]
        assert hot["count"] == 2
        assert hot["total_ms"] == pytest.approx(4.0)
        assert hot["mean_us"] == pytest.approx(2000.0)
        assert hot["max_us"] == pytest.approx(3000.0)

"""Tests for N:M structured workloads and the NV-DTC 2:4 sparse mode."""

import numpy as np
import pytest

from repro.arch.tasks import T1Task
from repro.arch.unistc import UniSTC
from repro.baselines import NvDTC, NvDTCSparse
from repro.baselines.nv_dtc_sparse import block_satisfies_2to4
from repro.errors import ShapeError
from repro.formats import BBCMatrix
from repro.formats.csr import CSRMatrix
from repro.sim.engine import simulate_kernel
from repro.workloads.structured import nm_pruned_weight, rmat, verify_nm_pattern


class TestNMPruning:
    def test_2to4_pattern_holds(self):
        w = nm_pruned_weight(64, 128, n=2, group=4, seed=0)
        assert verify_nm_pattern(w, 2, 4)

    def test_exact_density(self):
        w = nm_pruned_weight(32, 64, n=2, group=4, seed=1)
        assert w.nnz == 32 * 64 // 2  # exactly half kept

    def test_1to4_pattern(self):
        w = nm_pruned_weight(16, 32, n=1, group=4, seed=2)
        assert verify_nm_pattern(w, 1, 4)
        assert w.nnz == 16 * 32 // 4

    def test_rejects_bad_ratio(self):
        with pytest.raises(ShapeError):
            nm_pruned_weight(8, 16, n=5, group=4)

    def test_rejects_unaligned_k(self):
        with pytest.raises(ShapeError):
            nm_pruned_weight(8, 17, n=2, group=4)

    def test_unstructured_fails_verification(self, rng):
        dense = (rng.random((16, 16)) < 0.5) * 1.0
        from repro.formats.coo import COOMatrix

        assert not verify_nm_pattern(COOMatrix.from_dense(dense), 1, 4)


class TestNvDTCSparseMode:
    def test_detects_structured_block(self):
        w = nm_pruned_weight(16, 16, seed=3)
        a = w.to_dense() != 0
        assert block_satisfies_2to4(a)
        assert not block_satisfies_2to4(np.ones((16, 16), dtype=bool))

    def test_structured_block_twice_as_fast(self):
        w = nm_pruned_weight(16, 16, seed=4)
        a = w.to_dense() != 0
        task = T1Task.from_bitmaps(a, np.ones((16, 16), bool))
        dense_tc = NvDTC().simulate_block(task)
        sparse_tc = NvDTCSparse().simulate_block(task)
        assert sparse_tc.cycles * 2 == dense_tc.cycles
        assert sparse_tc.products == dense_tc.products

    def test_unstructured_block_no_speedup(self, rng):
        a = rng.random((16, 16)) < 0.5
        task = T1Task.from_bitmaps(a, np.ones((16, 16), bool))
        assert (NvDTCSparse().simulate_block(task).cycles
                == NvDTC().simulate_block(task).cycles)

    def test_dense_block_unchanged(self):
        task = T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))
        result = NvDTCSparse().simulate_block(task)
        assert result.cycles == 64
        assert result.products == 4096

    def test_uni_still_wins_on_structured_weights(self):
        """Even with its real 2x, the dense TC trails Uni-STC on 2:4
        weights (which are only 50% sparse but unexploited on B)."""
        w = nm_pruned_weight(64, 64, seed=5)
        bbc = BBCMatrix.from_coo(w)
        uni = simulate_kernel("spmm", bbc, UniSTC(), b_cols=64)
        nv24 = simulate_kernel("spmm", bbc, NvDTCSparse(), b_cols=64)
        assert uni.cycles <= nv24.cycles

    def test_structured_reads_compressed_a(self):
        w = nm_pruned_weight(16, 16, seed=6)
        task = T1Task.from_bitmaps(w.to_dense() != 0, np.ones((16, 16), bool))
        sparse_tc = NvDTCSparse().simulate_block(task)
        dense_tc = NvDTC().simulate_block(task)
        assert (sparse_tc.counters.get("a_elem_reads")
                < dense_tc.counters.get("a_elem_reads"))


class TestRMAT:
    def test_shape_and_bounds(self):
        g = rmat(6, edge_factor=4, seed=0)
        assert g.shape == (64, 64)
        assert g.rows.max() < 64 and g.cols.max() < 64

    def test_deterministic(self):
        assert rmat(5, seed=3) == rmat(5, seed=3)

    def test_skewed_degrees(self):
        g = rmat(9, edge_factor=8, seed=1)
        row_nnz = CSRMatrix.from_coo(g).row_nnz()
        assert row_nnz.max() > 5 * max(1.0, np.median(row_nnz))

    def test_duplicates_collapsed(self):
        g = rmat(4, edge_factor=16, seed=2)
        # COO canonicalisation leaves at most n*n entries.
        assert g.nnz <= 16 * 16

    def test_rejects_bad_scale(self):
        with pytest.raises(ShapeError):
            rmat(0)
        with pytest.raises(ShapeError):
            rmat(25)

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ShapeError):
            rmat(4, a=0.8, b=0.2, c=0.2)

    def test_usable_by_bfs(self):
        from repro.apps.bfs import bfs, reference_bfs
        from repro.kernels import reference

        g = CSRMatrix.from_coo(rmat(7, seed=4))
        sym = reference.add(g, g.transpose())
        result = bfs(sym, 0)
        assert np.array_equal(result.levels, reference_bfs(sym, 0))

"""End-to-end integration scenarios across multiple subsystems."""

import numpy as np
import pytest

from repro.apps.amg import AMGSolver
from repro.apps.cg import conjugate_gradient
from repro.apps.trace import KernelTrace
from repro.arch.unistc import UniSTC
from repro.arch.warp import WarpLog, warp_spgemm, warp_spmv
from repro.baselines import DsSTC, RmSTC
from repro.formats.bbc import BBCMatrix
from repro.formats.csr import CSRMatrix
from repro.kernels import bbc_kernels, reference
from repro.sim.engine import simulate_kernel
from repro.workloads.representative import build_matrix
from repro.workloads.synthetic import poisson2d


class TestPreconditionedSolveReplay:
    """AMG-preconditioned CG, traced end to end and replayed on STCs."""

    @pytest.fixture(scope="class")
    def solve(self):
        a = CSRMatrix.from_coo(poisson2d(14))
        amg = AMGSolver(a)
        trace = KernelTrace()
        rng = np.random.default_rng(0)
        b = rng.random(a.shape[0])
        result = conjugate_gradient(a, b, preconditioner=amg, trace=trace)
        return a, amg, trace, result, b

    def test_solution_correct(self, solve):
        a, _, _, result, b = solve
        assert result.converged
        assert np.allclose(a.to_dense() @ result.solution, b, atol=1e-6)

    def test_combined_trace_replay_ordering(self, solve):
        """Uni-STC clearly beats DS-STC on the whole solve and stays
        within a whisker of RM-STC even on this degenerate workload
        (<=5 nnz per row: every block sits at the one-cycle floor where
        the row-merge design is equally at home)."""
        _, amg, cg_trace, _, _ = solve
        combined = KernelTrace()
        combined.ops = amg.trace.ops + cg_trace.ops
        ds = sum(r.cycles for r in combined.replay(DsSTC()).values())
        rm = sum(r.cycles for r in combined.replay(RmSTC()).values())
        uni = sum(r.cycles for r in combined.replay(UniSTC()).values())
        assert uni < ds / 3
        assert uni < rm * 1.1

    def test_trace_contains_both_kernels(self, solve):
        _, amg, cg_trace, _, _ = solve
        assert "spgemm" in amg.trace.kernel_counts()
        assert cg_trace.kernel_counts()["spmv"] >= 2


class TestNumericsAgreeAcrossLayers:
    """The three software layers (reference CSR, BBC blocks, warp
    executor) must agree bit-for-bit-close on real workloads."""

    @pytest.fixture(scope="class")
    def matrix(self):
        coo = build_matrix("cant", n=128)
        return coo, CSRMatrix.from_coo(coo), BBCMatrix.from_coo(coo)

    def test_spmv_three_ways(self, matrix, rng):
        coo, csr, bbc = matrix
        x = rng.random(coo.shape[1])
        expected = coo.to_dense() @ x
        assert np.allclose(reference.spmv(csr, x), expected)
        assert np.allclose(bbc_kernels.spmv(bbc, x), expected)
        assert np.allclose(warp_spmv(bbc, x), expected)

    def test_spgemm_three_ways(self, matrix):
        coo, csr, bbc = matrix
        expected = coo.to_dense() @ coo.to_dense()
        assert np.allclose(reference.spgemm(csr, csr).to_dense(), expected)
        assert np.allclose(bbc_kernels.spgemm(bbc, bbc).to_dense(), expected)
        assert np.allclose(warp_spgemm(bbc, bbc).to_dense(), expected)

    def test_warp_log_consistent_with_simulated_tasks(self, matrix):
        coo, _, bbc = matrix
        log = WarpLog()
        warp_spgemm(bbc, bbc, log=log)
        report = simulate_kernel("spgemm", bbc, UniSTC())
        assert log.opcode_counts["stc.numeric.mm"] == report.t1_tasks


class TestSaveLoadSimulateRoundtrip:
    def test_simulation_identical_after_reload(self, tmp_path):
        coo = build_matrix("consph", n=128)
        bbc = BBCMatrix.from_coo(coo)
        bbc.save(tmp_path / "m.npz")
        reloaded = BBCMatrix.load(tmp_path / "m.npz")
        uni = UniSTC()
        original = simulate_kernel("spgemm", bbc, uni)
        again = simulate_kernel("spgemm", reloaded, uni)
        assert original.cycles == again.cycles
        assert original.energy_pj == pytest.approx(again.energy_pj)


class TestAdvisorMatchesSimulatedBenefit:
    def test_bbc_recommended_where_uni_shines(self):
        """On a block-dense matrix both the format advisor and the
        simulator point the same way: BBC + Uni-STC."""
        from repro.formats.advisor import recommend
        from repro.workloads.synthetic import block_dense

        coo = block_dense(96, block_density=0.05, fill=0.85, seed=3)
        assert recommend(coo) == "bbc"
        bbc = BBCMatrix.from_coo(coo)
        uni = simulate_kernel("spgemm", bbc, UniSTC())
        ds = simulate_kernel("spgemm", bbc, DsSTC())
        assert uni.cycles < ds.cycles

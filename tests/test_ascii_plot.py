"""Tests for the terminal plotting helpers."""

import pytest

from repro.analysis.ascii_plot import (
    bar_chart,
    grouped_bar_chart,
    histogram,
    scatter,
    sparkline,
)


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10     # peak fills the width
        assert lines[0].count("#") == 5

    def test_title(self):
        out = bar_chart(["x"], [1.0], title="T")
        assert out.splitlines()[0] == "T"

    def test_zero_values(self):
        out = bar_chart(["x"], [0.0])
        assert "#" not in out

    def test_empty(self):
        assert bar_chart([], [], title="T") == "T"

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_unit_suffix(self):
        out = bar_chart(["a"], [3.14159], unit="x")
        assert "3.14x" in out


class TestGroupedBarChart:
    def test_structure(self):
        out = grouped_bar_chart(["g1", "g2"], {"s1": [1, 2], "s2": [2, 1]}, width=8)
        lines = out.splitlines()
        assert lines[0] == "g1:"
        assert len(lines) == 6

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            grouped_bar_chart(["g1"], {"s": [1, 2]})


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_shape(self):
        line = sparkline([0, 1, 2, 3])
        assert sorted(line) == list(line)

    def test_flat(self):
        assert len(set(sparkline([5, 5, 5]))) == 1

    def test_empty(self):
        assert sparkline([]) == ""


class TestScatter:
    def test_basic_grid(self):
        out = scatter([0.0, 1.0], [0.0, 1.0], width=20, height=8)
        lines = out.splitlines()
        assert len(lines) >= 8
        assert out.count(".") >= 2  # default mark (axis labels may add more)

    def test_title_and_labels(self):
        out = scatter([1.0], [2.0], title="T", x_label="area", y_label="cyc")
        assert out.splitlines()[0] == "T"
        assert "area" in out
        assert "cyc" in out

    def test_custom_marks(self):
        out = scatter([0.0, 0.5, 1.0], [0.0, 0.5, 1.0], marks=["@", "*", "."])
        assert "@" in out and "*" in out and "." in out

    def test_later_points_overwrite(self):
        out = scatter([0.5, 0.5], [0.5, 0.5], marks=["%", "@"])
        assert "@" in out
        assert "%" not in out

    def test_degenerate_range_collapses_to_centre(self):
        out = scatter([3.0, 3.0], [7.0, 7.0], marks=["*", "*"])
        # One shared centre cell, no division by zero.
        assert out.count("*") == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            scatter([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            scatter([1.0, 2.0], [1.0, 2.0], marks=["*"])

    def test_empty(self):
        assert scatter([], [], title="T") == "T"

    def test_axis_extent_annotations(self):
        out = scatter([1.0, 9.0], [10.0, 90.0])
        assert "1" in out and "9" in out


class TestHistogram:
    def test_percent_labels(self):
        out = histogram(["low", "high"], [0.25, 0.75])
        assert "75.00%" in out and "25.00%" in out

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            histogram(["a"], [-0.1])

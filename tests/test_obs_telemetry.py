"""Tests for streaming campaign telemetry (repro.obs.telemetry).

Covers the wire format (writer -> tailer round trips, the compact
metrics-delta encoding), the tailer's corruption/rotation hardening
(which mirrors the checkpoint-journal contract), the exactly-once
crash fold, the live status model, and trace stitching.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.metrics import (
    MetricsRegistry,
    expand_delta,
    parse_wire_key,
    wire_key,
)
from repro.obs.stitch import stitch_chrome_trace, stitch_into_tracer
from repro.obs.telemetry import (
    STATUS_KIND,
    STATUS_SCHEMA,
    TELEMETRY_SCHEMA,
    CampaignMonitor,
    MetricsFold,
    TelemetryTailer,
    TelemetryWriter,
    check_status,
    fold_metrics,
    telemetry_path,
)
from repro.obs.tracer import Tracer


def make_writer(tmp_path, shard="s0", total=4, **kwargs):
    return TelemetryWriter(
        telemetry_path(tmp_path, shard), shard, total, **kwargs)


def progress(shard="s0", inst="a", seq=0, done=0, total=4,
             phase="running", metrics=None, t=0.0):
    """A hand-written progress record (snapshot-shaped metrics)."""
    record = {
        "v": TELEMETRY_SCHEMA, "kind": "progress", "shard": shard,
        "pid": 100, "inst": inst, "seq": seq, "t": t, "phase": phase,
        "done": done, "total": total,
    }
    if metrics is not None:
        record["metrics"] = metrics
    return record


def counters(**values):
    """Snapshot-shaped counter section: name -> unlabelled value."""
    return {"counters": {
        name: [{"labels": {}, "value": value}]
        for name, value in values.items()
    }}


class TestWriterTailerRoundTrip:
    def test_lifecycle_records_in_order(self, tmp_path):
        writer = make_writer(tmp_path)
        tailer = TelemetryTailer(telemetry_path(tmp_path, "s0"))
        writer.start()
        writer.case_done(1)
        writer.beat()
        writer.case_done(2)
        writer.finish()

        records = tailer.poll()
        assert [r["kind"] for r in records] == \
            ["beat", "progress", "beat", "progress", "progress"]
        assert [r["seq"] for r in records] == list(range(5))
        assert all(r["v"] == TELEMETRY_SCHEMA for r in records)
        assert all(r["shard"] == "s0" and r["total"] == 4 for r in records)
        assert records[-1]["phase"] == "finished"
        assert records[-1]["done"] == 2
        assert tailer.poll() == []   # nothing new

    def test_incremental_polls_see_only_new_records(self, tmp_path):
        writer = make_writer(tmp_path)
        tailer = TelemetryTailer(telemetry_path(tmp_path, "s0"))
        writer.start()
        assert len(tailer.poll()) == 1
        writer.case_done(1)
        writer.case_done(2)
        assert [r["done"] for r in tailer.poll()] == [1, 2]

    def test_missing_file_is_empty_not_an_error(self, tmp_path):
        assert TelemetryTailer(tmp_path / "nope.telemetry.jsonl").poll() == []

    def test_resume_start_carries_prior_done(self, tmp_path):
        writer = make_writer(tmp_path)
        writer.start(done=3)
        (record,) = TelemetryTailer(telemetry_path(tmp_path, "s0")).poll()
        assert record["phase"] == "starting" and record["done"] == 3

    def test_writer_survives_unwritable_path(self, tmp_path):
        writer = TelemetryWriter(
            tmp_path / "no_such_dir_file" / "x" / "s0.telemetry.jsonl",
            "s0", 1)
        # Parent mkdir succeeds, so make the path itself a directory.
        path = tmp_path / "adir"
        path.mkdir()
        writer._path = path
        writer.start()   # logged and swallowed, never raises
        writer.finish()


class TestTailerHardening:
    """Mirrors read_raw_journal's torn-write and rotation contract."""

    def path(self, tmp_path):
        return telemetry_path(tmp_path, "s0")

    def write_lines(self, path, *lines, mode="a"):
        with open(path, mode, encoding="utf-8") as handle:
            handle.write("".join(lines))

    def test_partial_trailing_line_is_held(self, tmp_path):
        path = self.path(tmp_path)
        full = json.dumps(progress(seq=0)) + "\n"
        torn = json.dumps(progress(seq=1))
        self.write_lines(path, full, torn[:20])
        tailer = TelemetryTailer(path)
        assert [r["seq"] for r in tailer.poll()] == [0]
        assert tailer.poll() == []          # still waiting for the newline
        self.write_lines(path, torn[20:] + "\n")
        assert [r["seq"] for r in tailer.poll()] == [1]

    def test_malformed_final_line_is_held_not_fatal(self, tmp_path):
        path = self.path(tmp_path)
        self.write_lines(path, json.dumps(progress(seq=0)) + "\n",
                         '{"kind": "progre\n')
        tailer = TelemetryTailer(path)
        assert [r["seq"] for r in tailer.poll()] == [0]
        assert tailer.poll() == []          # torn write held un-consumed

    def test_garble_becomes_interior_and_raises_once_buried(self, tmp_path):
        path = self.path(tmp_path)
        self.write_lines(path, json.dumps(progress(seq=0)) + "\n",
                         "not json at all\n")
        tailer = TelemetryTailer(path)
        tailer.poll()                       # garble held as a torn final line
        self.write_lines(path, json.dumps(progress(seq=1)) + "\n")
        with pytest.raises(TelemetryError, match="corrupt at byte"):
            tailer.poll()

    def test_interior_corruption_raises_immediately(self, tmp_path):
        path = self.path(tmp_path)
        self.write_lines(path, "][\n", json.dumps(progress(seq=0)) + "\n")
        with pytest.raises(TelemetryError):
            TelemetryTailer(path).poll()

    def test_non_record_json_line_is_rejected(self, tmp_path):
        path = self.path(tmp_path)
        self.write_lines(path, "[1, 2]\n", json.dumps(progress(seq=0)) + "\n")
        with pytest.raises(TelemetryError):
            TelemetryTailer(path).poll()

    def test_blank_lines_are_skipped(self, tmp_path):
        path = self.path(tmp_path)
        self.write_lines(path, "\n", json.dumps(progress(seq=0)) + "\n", "\n")
        assert [r["seq"] for r in TelemetryTailer(path).poll()] == [0]

    def test_truncation_resets_and_seen_set_dedups(self, tmp_path):
        path = self.path(tmp_path)
        first = json.dumps(progress(seq=0, done=1)) + "\n"
        second = json.dumps(progress(seq=1, done=2)) + "\n"
        self.write_lines(path, first, second)
        tailer = TelemetryTailer(path)
        assert len(tailer.poll()) == 2

        # Rotation rewrites the file shorter, starting with an
        # already-seen line: the reset re-reads it, the seen-set drops
        # it, and only the genuinely new record comes out.
        self.write_lines(path, first, mode="w")
        assert tailer.poll() == []
        assert tailer.rotations == 1
        fresh = json.dumps(progress(seq=2, done=3)) + "\n"
        self.write_lines(path, fresh)
        assert [r["seq"] for r in tailer.poll()] == [2]

    def test_vanished_file_counts_as_rotation(self, tmp_path):
        path = self.path(tmp_path)
        self.write_lines(path, json.dumps(progress(seq=0)) + "\n")
        tailer = TelemetryTailer(path)
        assert len(tailer.poll()) == 1
        path.unlink()
        assert tailer.poll() == []
        assert tailer.rotations == 1
        self.write_lines(path, json.dumps(progress(seq=1)) + "\n")
        assert [r["seq"] for r in tailer.poll()] == [1]

    def test_interleaved_writers_share_one_file(self, tmp_path):
        """A respawned worker appends under a fresh incarnation token
        while the tailer is mid-stream; both streams come through."""
        path = self.path(tmp_path)
        a = TelemetryWriter(path, "s0", 4)
        tailer = TelemetryTailer(path)
        a.start()
        a.case_done(1)
        assert len(tailer.poll()) == 2

        b = TelemetryWriter(path, "s0", 4)   # fresh inst, same file
        b.start(done=1)
        a.case_done(2)                       # stale writer races a line in
        b.case_done(2)
        records = tailer.poll()
        assert len(records) == 3
        assert len({r["inst"] for r in records}) == 2
        # Per-incarnation seq restarts; (inst, seq) stays unique.
        keys = {(r["inst"], r["seq"]) for r in records}
        assert len(keys) == 3


class TestCompactWireForm:
    def test_wire_key_round_trip(self):
        key = wire_key("sim.cycles", (("kernel", "spmv"), ("stc", "uni")))
        assert parse_wire_key(key) == \
            ("sim.cycles", {"kernel": "spmv", "stc": "uni"})
        assert parse_wire_key(wire_key("bare", ())) == ("bare", {})

    def test_expand_delta_matches_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.inc("c", 2, kernel="spmv")
        reg.set("g", 1.5)
        reg.observe("h", 0.02, stc="uni")
        expanded = expand_delta(reg.snapshot_delta())
        snap = reg.snapshot()
        assert expanded["counters"] == snap["counters"]
        assert expanded["gauges"] == snap["gauges"]
        assert expanded["histograms"] == snap["histograms"]

    def test_delta_is_json_clean_through_the_wire(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.5)
        delta = json.loads(json.dumps(reg.snapshot_delta()))
        entry = expand_delta(delta)["histograms"]["h"][0]
        assert entry["bounds"][-1] is None
        assert len(entry["bounds"]) == len(entry["counts"])
        assert sum(entry["counts"]) == entry["count"] == 1


class TestMetricsFold:
    def test_within_incarnation_cumulative_overwrites(self):
        fold = MetricsFold()
        fold.apply(progress(seq=0, metrics=counters(cases=1.0)))
        fold.apply(progress(seq=1, metrics=counters(cases=2.0)))
        fold.apply(progress(seq=2, metrics=counters(cases=3.0)))
        assert fold.incarnations == 1
        assert fold.counter_total("cases") == 3.0

    def test_across_incarnations_final_states_add(self):
        """SIGKILL after case 2, respawn does 2 more: 2 + 2, not 2 + 4."""
        fold = MetricsFold()
        fold.apply(progress(inst="a", seq=0, metrics=counters(cases=1.0)))
        fold.apply(progress(inst="a", seq=1, metrics=counters(cases=2.0)))
        fold.apply(progress(inst="b", seq=0, metrics=counters(cases=1.0)))
        fold.apply(progress(inst="b", seq=1, metrics=counters(cases=2.0)))
        assert fold.incarnations == 2
        assert fold.counter_total("cases") == 4.0

    def test_non_progress_and_empty_records_are_ignored(self):
        fold = MetricsFold()
        fold.apply({"kind": "beat", "inst": "a", "seq": 0})
        fold.apply(progress(seq=1))   # no metrics payload
        assert fold.incarnations == 0

    def test_compact_form_is_expanded(self):
        reg = MetricsRegistry()
        reg.inc("sim.cycles", 90, kernel="spmv")
        fold = MetricsFold()
        fold.apply(progress(seq=0, metrics=reg.snapshot_delta()))
        assert fold.counter_total("sim.cycles") == 90

    def test_snapshot_tags_gauges_with_shard(self):
        fold = MetricsFold()
        fold.apply(progress(seq=0, metrics={
            "gauges": {"cache.entries": [{"labels": {}, "value": 7.0}]}}))
        snap = fold.snapshot(shard="s1")
        assert snap["gauges"]["cache.entries"] == \
            [{"labels": {"shard": "s1"}, "value": 7.0}]
        untagged = fold.snapshot()
        assert untagged["gauges"]["cache.entries"][0]["labels"] == {}

    def test_gauge_respawn_reading_supersedes(self):
        fold = MetricsFold()
        fold.apply(progress(inst="a", seq=0, metrics={
            "gauges": {"g": [{"labels": {}, "value": 1.0}]}}))
        fold.apply(progress(inst="b", seq=0, metrics={
            "gauges": {"g": [{"labels": {}, "value": 5.0}]}}))
        assert fold.snapshot()["gauges"]["g"][0]["value"] == 5.0

    def test_histograms_add_across_incarnations(self):
        def hist_delta(reg):
            return {"histograms":
                    expand_delta(reg.snapshot_delta())["histograms"]}

        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("wall", 0.5)
        a.observe("wall", 5.0)
        b.observe("wall", 0.05)
        fold = MetricsFold()
        fold.apply(progress(inst="a", seq=0, metrics=hist_delta(a)))
        fold.apply(progress(inst="b", seq=0, metrics=hist_delta(b)))
        (entry,) = fold.snapshot()["histograms"]["wall"]
        assert entry["count"] == 3
        assert sum(entry["counts"]) == 3
        assert entry["min"] == 0.05 and entry["max"] == 5.0

    def test_streamed_replay_equals_full_snapshot(self, tmp_path):
        """The tentpole identity: fold(tailed deltas) == registry state."""
        reg = MetricsRegistry()
        writer = make_writer(tmp_path, registry=reg)
        tailer = TelemetryTailer(telemetry_path(tmp_path, "s0"))
        writer.start()
        for case in range(1, 4):
            reg.inc("sim.t1_tasks", 10 * case, kernel="spmv")
            reg.inc("sim.cycles", 7, kernel="spmv", stc="uni")
            reg.observe("sim.run_wall_s", 0.01 * case)
            reg.set("sim.cache.entries", float(case))
            writer.case_done(case)
        writer.finish()

        folded = fold_metrics(tailer.poll())
        snap = reg.snapshot()
        assert folded["counters"] == snap["counters"]
        assert folded["histograms"] == snap["histograms"]
        assert folded["gauges"] == snap["gauges"]


class TestCampaignMonitor:
    def feed(self, monitor, tmp_path, shard, records):
        path = telemetry_path(tmp_path, shard)
        with open(path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        monitor.add_shard(shard, path, total=records[-1].get("total"))

    def test_status_sums_shards_and_prior(self, tmp_path):
        monitor = CampaignMonitor(clock=lambda: 100.0)
        monitor.campaign_total = 10
        monitor.prior_done = 2
        self.feed(monitor, tmp_path, "s0",
                  [progress(shard="s0", seq=0, done=3, total=4, t=99.0)])
        self.feed(monitor, tmp_path, "s1",
                  [progress(shard="s1", seq=0, done=1, total=4, t=99.5)])
        monitor.poll()
        doc = check_status(monitor.status())
        assert doc["state"] == "running"
        assert doc["done"] == 6 and doc["total"] == 10
        assert doc["prior_done"] == 2
        assert [s["shard"] for s in doc["shards"]] == ["s0", "s1"]
        assert doc["shards"][0]["age_s"] == pytest.approx(1.0)

    def test_done_state_requires_terminal_phases(self, tmp_path):
        monitor = CampaignMonitor(clock=lambda: 10.0)
        self.feed(monitor, tmp_path, "s0", [
            progress(shard="s0", seq=0, done=2, total=2, phase="finished")])
        self.feed(monitor, tmp_path, "s1", [
            progress(shard="s1", seq=0, done=1, total=2, phase="running")])
        monitor.poll()
        assert monitor.status()["state"] == "running"
        self.feed(monitor, tmp_path, "s1", [
            progress(shard="s1", seq=1, done=2, total=2, phase="finished")])
        monitor.poll()
        assert monitor.status()["state"] == "done"

    def test_rate_eta_and_slow_flag(self, tmp_path):
        monitor = CampaignMonitor(clock=lambda: 20.0)
        fast = [progress(shard="s0", seq=i, done=i, total=100, t=float(i))
                for i in range(11)]
        slow = [progress(shard="s1", seq=i, done=i, total=100, t=float(4 * i))
                for i in range(11)]
        self.feed(monitor, tmp_path, "s0", fast)
        self.feed(monitor, tmp_path, "s1", slow)
        monitor.poll()
        doc = monitor.status()
        by_id = {s["shard"]: s for s in doc["shards"]}
        assert by_id["s0"]["cases_per_s"] == pytest.approx(1.0)
        assert by_id["s1"]["cases_per_s"] == pytest.approx(0.25)
        assert by_id["s0"]["eta_s"] == pytest.approx(90.0)
        assert not by_id["s0"]["slow"] and by_id["s1"]["slow"]
        assert doc["cases_per_s"] == pytest.approx(1.25)

    def test_crash_count_is_extra_incarnations(self, tmp_path):
        monitor = CampaignMonitor(clock=lambda: 0.0)
        self.feed(monitor, tmp_path, "s0", [
            progress(shard="s0", inst="a", seq=0, done=1),
            progress(shard="s0", inst="b", seq=0, done=2),
        ])
        monitor.poll()
        (shard,) = monitor.status()["shards"]
        assert shard["crashes"] == 1

    def test_corrupt_stream_freezes_shard_not_campaign(self, tmp_path):
        monitor = CampaignMonitor(clock=lambda: 0.0)
        self.feed(monitor, tmp_path, "s0",
                  [progress(shard="s0", seq=0, done=1)])
        monitor.poll()   # the good record lands first
        path = telemetry_path(tmp_path, "s0")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("garbage\n" + json.dumps(progress(seq=1)) + "\n")
        monitor.poll()   # interior garble -> shard frozen
        (shard,) = monitor.status()["shards"]
        assert shard["phase"] == "corrupt"
        assert shard["done"] == 1   # frozen at the last good record

    def test_discover_finds_workdir_telemetry(self, tmp_path):
        for shard in ("s0", "s1"):
            self.feed(CampaignMonitor(), tmp_path, shard,
                      [progress(shard=shard, seq=0)])
        monitor = CampaignMonitor()
        assert monitor.discover(tmp_path) == 2
        assert monitor.shard_ids == ["s0", "s1"]
        assert monitor.discover(tmp_path) == 0   # idempotent

    def test_fold_into_registry_tags_gauges_per_shard(self, tmp_path):
        monitor = CampaignMonitor()
        for shard, cycles in (("s0", 10.0), ("s1", 32.0)):
            self.feed(monitor, tmp_path, shard, [progress(
                shard=shard, seq=0, metrics={
                    **counters(cycles=cycles),
                    "gauges": {"g": [{"labels": {}, "value": cycles}]}})])
        monitor.poll()
        reg = MetricsRegistry()
        monitor.fold_into(reg)
        assert reg.counter("cycles").total == 42.0
        assert reg.gauge("g").value(shard="s0") == 10.0
        assert reg.gauge("g").value(shard="s1") == 32.0

    def test_write_status_round_trips_check_status(self, tmp_path):
        monitor = CampaignMonitor(clock=lambda: 1.0)
        monitor.campaign_total = 4
        self.feed(monitor, tmp_path, "s0",
                  [progress(shard="s0", seq=0, done=4, total=4,
                            phase="finished")])
        monitor.poll()
        out = tmp_path / "status.json"
        monitor.write_status(out, state="done")
        doc = check_status(json.loads(out.read_text()))
        assert doc["state"] == "done" and doc["done"] == 4


class TestCheckStatus:
    def good(self):
        return {
            "kind": STATUS_KIND, "schema": STATUS_SCHEMA, "t": 0.0,
            "state": "done", "done": 3, "total": 3, "prior_done": 1,
            "shards": [
                {"shard": "s0", "phase": "finished", "done": 2, "total": 2},
            ],
        }

    def test_valid_document_passes(self):
        assert check_status(self.good())["done"] == 3

    def test_wrong_kind_rejected(self):
        with pytest.raises(TelemetryError, match="not a repro.exec.status"):
            check_status({"kind": "something-else"})

    def test_schema_mismatch_rejected(self):
        doc = self.good()
        doc["schema"] = 99
        with pytest.raises(TelemetryError, match="schema mismatch"):
            check_status(doc)

    def test_missing_shard_fields_rejected(self):
        doc = self.good()
        del doc["shards"][0]["done"]
        with pytest.raises(TelemetryError, match="missing"):
            check_status(doc)

    def test_done_sum_mismatch_rejected(self):
        doc = self.good()
        doc["done"] = 5
        with pytest.raises(TelemetryError, match="sum to"):
            check_status(doc)


class TestStitch:
    def streamed(self, tmp_path, shard, pid, epoch, spans):
        """Build a spans record the way a worker writer would."""
        tracer = Tracer()
        tracer.epoch_wall = epoch
        for name, ts, dur in spans:
            record = tracer.span(name, shard=shard)
            with record:
                pass
        drained, events = tracer.drain(0, 0)
        # Overwrite the measured timestamps with the controlled ones.
        payload = [
            {"name": s.name, "ts_us": ts, "dur_us": dur, "tid": s.tid,
             "depth": s.depth, "parent": s.parent, "args": dict(s.args)}
            for s, (name, ts, dur) in zip(drained, spans)
        ]
        return {
            "v": TELEMETRY_SCHEMA, "kind": "spans", "shard": shard,
            "pid": pid, "inst": f"{pid}-x", "seq": 0, "t": epoch,
            "phase": "running", "done": 0, "total": 1,
            "epoch_wall_s": epoch, "spans": payload, "events": [],
        }

    def test_distinct_pids_and_process_names(self, tmp_path):
        sup = Tracer()
        sup.epoch_wall = 1000.0
        with sup.span("exec.dispatch", shard="s0"):
            pass
        sup.instant("exec.worker_spawn", shard="s0")
        spans_by_shard = {
            "s0": [self.streamed(tmp_path, "s0", 111, 1000.5,
                                 [("simulate", 10.0, 5.0)])],
            "s1": [self.streamed(tmp_path, "s1", 222, 1001.0,
                                 [("simulate", 20.0, 7.0)])],
        }
        adopted = stitch_into_tracer(sup, spans_by_shard)
        assert adopted == 2
        trace = sup.chrome_trace()
        events = trace["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert pids == {sup.pid, 111, 222}
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"supervisor", "worker s0 (pid 111)",
                         "worker s1 (pid 222)"}
        assert any(e["ph"] == "i" and e["name"] == "exec.worker_spawn"
                   for e in events)

    def test_epoch_rebase_shifts_worker_timestamps(self, tmp_path):
        sup = Tracer()
        sup.epoch_wall = 1000.0
        record = self.streamed(tmp_path, "s0", 111, 1002.0,
                               [("simulate", 10.0, 5.0)])
        stitch_into_tracer(sup, {"s0": [record]})
        (span,) = [e for e in sup.chrome_trace()["traceEvents"]
                   if e["ph"] == "X"]
        # 2 s later epoch -> +2e6 us shift; duration untouched.
        assert span["ts"] == pytest.approx(10.0 + 2e6)
        assert span["dur"] == pytest.approx(5.0)

    def test_malformed_records_are_skipped(self, tmp_path):
        sup = Tracer()
        good = self.streamed(tmp_path, "s0", 111, sup.epoch_wall,
                             [("simulate", 1.0, 1.0)])
        missing_epoch = dict(good)
        del missing_epoch["epoch_wall_s"]
        adopted = stitch_into_tracer(
            sup, {"s0": [missing_epoch, good]})
        assert adopted == 1

    def test_standalone_stitch_without_supervisor(self, tmp_path):
        record = self.streamed(tmp_path, "s0", 111, 500.0,
                               [("simulate", 1.0, 1.0)])
        trace = stitch_chrome_trace({"s0": [record]})
        events = trace["traceEvents"]
        assert {e["pid"] for e in events if e["ph"] == "X"} == {111}
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"worker s0 (pid 111)"}

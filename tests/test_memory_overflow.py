"""Regression test: output-nnz counting must not wrap on dense rows."""

import numpy as np

from repro.formats import BBCMatrix
from repro.sim.memory import spgemm_output_nnz


def test_output_nnz_no_uint8_wrap():
    """A 512-wide dense row yields inner products of 512 matched terms;
    a uint8 accumulator would wrap to 0 and drop the whole row."""
    n = 512
    dense = np.zeros((n, n))
    dense[0, :] = 1.0   # one dense row
    dense[:, 0] = 1.0   # one dense column
    bbc = BBCMatrix.from_dense(dense)
    # C = A @ A: row 0 = dense-row x dense-col structure -> fully dense
    # row; inner product at (0, 0) matches in n terms (multiple of 256).
    expected = int(np.count_nonzero((dense != 0).astype(np.int64) @ (dense != 0).astype(np.int64)))
    assert spgemm_output_nnz(bbc) == expected
    assert spgemm_output_nnz(bbc) >= n  # the dense row survives


def test_output_nnz_exact_small(rng):
    da = rng.random((40, 40)) * (rng.random((40, 40)) < 0.2)
    a = BBCMatrix.from_dense(da)
    expected = int(np.count_nonzero((da != 0).astype(np.int64) @ (da != 0).astype(np.int64)))
    assert spgemm_output_nnz(a) == expected

"""Expected-shape assertions: the paper's headline claims must hold.

These tests pin the *qualitative* results of the evaluation section —
who wins, ordering, and rough factors — so a regression in any model
that would silently flip a paper conclusion fails loudly.  Exact
factors live in EXPERIMENTS.md; the tolerances here are deliberately
wide.
"""

import numpy as np
import pytest

from repro.arch.config import UniSTCConfig
from repro.arch.tasks import T1Task
from repro.arch.unistc import UniSTC
from repro.baselines import DsSTC, Gamma, NvDTC, RmSTC, Sigma, Trapezoid
from repro.energy.model import DEFAULT_MODEL
from repro.formats import BBCMatrix
from repro.sim.engine import simulate_kernel
from repro.sim.results import geomean
from repro.workloads.representative import build_matrix
from repro.workloads.synthetic import random_uniform


@pytest.fixture(scope="module")
def rep_matrices():
    return {
        name: BBCMatrix.from_coo(build_matrix(name, n=256))
        for name in ("consph", "cant", "gupta3")
    }


@pytest.fixture(scope="module")
def stcs():
    return {
        "nv-dtc": NvDTC(), "gamma": Gamma(), "sigma": Sigma(),
        "trapezoid": Trapezoid(), "ds-stc": DsSTC(), "rm-stc": RmSTC(),
        "uni-stc": UniSTC(),
    }


def _speedups(kernel, matrices, stcs, baseline="ds-stc"):
    per_stc = {name: [] for name in stcs}
    for bbc in matrices.values():
        base = simulate_kernel(kernel, bbc, stcs[baseline]).cycles
        for name, stc in stcs.items():
            per_stc[name].append(base / simulate_kernel(kernel, bbc, stc).cycles)
    return {name: geomean(vals) for name, vals in per_stc.items()}


class TestHeadline:
    def test_spgemm_uni_beats_all(self, rep_matrices, stcs):
        s = _speedups("spgemm", rep_matrices, stcs)
        assert all(s["uni-stc"] >= v for v in s.values())

    def test_spgemm_factors_near_paper(self, rep_matrices, stcs):
        """Paper: ~2.4x over DS-STC, ~1.45x over RM-STC at kernel level."""
        s = _speedups("spgemm", rep_matrices, stcs)
        assert 1.5 <= s["uni-stc"] <= 4.5
        assert 1.1 <= s["uni-stc"] / s["rm-stc"] <= 2.5

    def test_spmv_factors_near_paper(self, rep_matrices, stcs):
        """Paper: ~3.8x over DS-STC, ~1.4x over RM-STC."""
        s = _speedups("spmv", rep_matrices, stcs)
        assert 2.5 <= s["uni-stc"] <= 6.5
        assert 1.0 <= s["uni-stc"] / s["rm-stc"] <= 2.2

    def test_rm_is_sota_baseline(self, rep_matrices, stcs):
        """RM-STC beats DS-STC (it is the state of the art Uni-STC targets)."""
        for kernel in ("spgemm", "spmv", "spmm"):
            s = _speedups(kernel, rep_matrices, stcs)
            assert s["rm-stc"] > 1.0, kernel

    def test_uni_wins_every_kernel(self, rep_matrices, stcs):
        for kernel in ("spmv", "spmm", "spgemm"):
            s = _speedups(kernel, rep_matrices, stcs)
            best_baseline = max(v for k, v in s.items() if k != "uni-stc")
            assert s["uni-stc"] >= 0.95 * best_baseline, kernel


class TestEnergyClaims:
    def test_uni_lowest_energy_spgemm(self, rep_matrices):
        """Fig. 18: Uni-STC has the lowest total energy on SpGEMM."""
        for bbc in rep_matrices.values():
            uni = simulate_kernel("spgemm", bbc, UniSTC()).energy_pj
            ds = simulate_kernel("spgemm", bbc, DsSTC()).energy_pj
            rm = simulate_kernel("spgemm", bbc, RmSTC()).energy_pj
            assert uni < rm < ds

    def test_c_write_energy_gap(self, rep_matrices):
        """Fig. 18/19: DS-STC pays several times Uni-STC's write-C energy."""
        ratios = []
        for bbc in rep_matrices.values():
            uni = simulate_kernel("spgemm", bbc, UniSTC()).energy_breakdown["write_c"]
            ds = simulate_kernel("spgemm", bbc, DsSTC()).energy_breakdown["write_c"]
            ratios.append(ds / uni)
        assert geomean(ratios) > 3.0  # paper reports 6.5x

    def test_c_write_traffic_ordering(self, rep_matrices):
        """Fig. 19: Uni-STC writes the fewest elements towards C."""
        for bbc in rep_matrices.values():
            uni = simulate_kernel("spgemm", bbc, UniSTC()).c_write_traffic
            rm = simulate_kernel("spgemm", bbc, RmSTC()).c_write_traffic
            ds = simulate_kernel("spgemm", bbc, DsSTC()).c_write_traffic
            assert uni < rm <= ds

    def test_dense_energy_close_to_nv(self):
        """§VI-C: in dense workloads Uni-STC's energy stays near NV-DTC
        while DS-STC and RM-STC pay reuse/transfer overheads."""
        dense = T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))
        energies = {}
        for stc in (NvDTC(), DsSTC(), RmSTC(), UniSTC()):
            result = stc.simulate_block(dense)
            energies[stc.name] = DEFAULT_MODEL.energy_pj(result.counters, stc.name)
        assert energies["uni-stc"] <= 1.3 * energies["nv-dtc"]
        assert energies["uni-stc"] < energies["rm-stc"] < energies["ds-stc"]


class TestUtilisationClaims:
    def test_fig5_low_util_ordering(self, rep_matrices, stcs):
        """Fig. 5: Uni-STC has by far the fewest low-utilisation cycles."""
        for bbc in rep_matrices.values():
            uni = simulate_kernel("spgemm", bbc, stcs["uni-stc"]).util_hist.low_util_fraction()
            ds = simulate_kernel("spgemm", bbc, stcs["ds-stc"]).util_hist.low_util_fraction()
            rm = simulate_kernel("spgemm", bbc, stcs["rm-stc"]).util_hist.low_util_fraction()
            nv = simulate_kernel("spgemm", bbc, stcs["nv-dtc"]).util_hist.low_util_fraction()
            assert uni < ds and uni < rm and uni < nv

    def test_fig16_random_matrix_util_ordering(self, stcs):
        """Fig. 16: across the sparsity sweep Uni-STC's MAC utilisation
        leads on (geometric) average and NV-DTC trails everything."""
        utils = {name: [] for name in stcs}
        for density in (0.02, 0.1, 0.3, 0.5):
            bbc = BBCMatrix.from_coo(random_uniform(128, 128, density, seed=0))
            for name, stc in stcs.items():
                utils[name].append(simulate_kernel("spgemm", bbc, stc).mean_utilisation)
        means = {name: geomean(vals) for name, vals in utils.items()}
        assert means["uni-stc"] == max(means.values())
        assert means["nv-dtc"] == min(means.values())
        # Paper: 1.39x over RM-STC, 1.89x over DS-STC on average.
        assert means["uni-stc"] / means["rm-stc"] > 1.1
        assert means["uni-stc"] / means["ds-stc"] > 1.4

    def test_dynamic_dpg_activation(self):
        """§VI-C/Fig. 20: sparse blocks activate few DPGs, dense more."""
        uni = UniSTC()
        sparse = uni.simulate_block(
            T1Task.from_bitmaps(
                np.eye(16, dtype=bool), np.eye(16, dtype=bool)
            )
        )
        dense = uni.simulate_block(
            T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))
        )
        sparse_active = sparse.counters.get("dpg_active_cycles") / sparse.cycles
        dense_active = dense.counters.get("dpg_active_cycles") / dense.cycles
        assert sparse_active <= 8
        assert dense_active <= 2.0  # dense: ~1 full T3 per cycle at FP64


class TestDPGSweep:
    def test_fig22_direction(self):
        """Fig. 22: more DPGs help SpMM/SpGEMM cycles, with diminishing
        returns; SpMV gains little beyond 4."""
        bbc = BBCMatrix.from_coo(build_matrix("cant", n=256))
        cfgs = {
            4: UniSTC(UniSTCConfig(num_dpgs=4, tile_queue_depth=8)),
            8: UniSTC(),
            16: UniSTC(UniSTCConfig(num_dpgs=16)),
        }
        gemm = {d: simulate_kernel("spgemm", bbc, stc).cycles for d, stc in cfgs.items()}
        assert gemm[8] <= gemm[4]
        assert gemm[16] <= gemm[8]
        spmv = {d: simulate_kernel("spmv", bbc, stc).cycles for d, stc in cfgs.items()}
        spmv_gain = spmv[4] / spmv[16] if spmv[16] else 1.0
        gemm_gain = gemm[4] / gemm[16]
        assert gemm_gain >= spmv_gain * 0.95

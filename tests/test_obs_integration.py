"""Integration tests: observability wired through engine, sweep, runner, CLI."""

import json

import pytest

from repro import obs
from repro.arch.unistc import UniSTC
from repro.cli import main
from repro.errors import SimulationError
from repro.resilience.runner import ResilientRunner, RetryPolicy
from repro.sim.blockcache import BlockCache, CacheStats
from repro.sim.engine import simulate_kernel
from repro.sim.parallel import simulate_parallel
from repro.sim.sweep import ROW_COLUMNS, Sweep, rows_from_results
from repro.workloads.synthetic import banded


@pytest.fixture(autouse=True)
def obs_reset():
    obs.enable(fresh=True)
    obs.disable()
    yield
    obs.disable()


@pytest.fixture
def sweep():
    return Sweep(
        matrices={"band": banded(64, 8, 0.4, seed=1),
                  "band2": banded(64, 6, 0.3, seed=2)},
        stcs={"uni-stc": UniSTC},
        kernels=["spmv"],
    )


class TestCacheStatsSnapshot:
    def test_snapshot_is_independent_copy(self):
        stats = CacheStats(hits=3, misses=2)
        snap = stats.snapshot()
        stats.hits = 10
        assert snap.hits == 3

    def test_delta(self):
        stats = CacheStats(hits=5, misses=4, evictions=1, inserts=4)
        snap = stats.snapshot()
        stats.hits += 2
        stats.misses += 1
        delta = stats.delta(snap)
        assert (delta.hits, delta.misses, delta.evictions, delta.inserts) == \
            (2, 1, 0, 0)
        assert delta.hit_rate == pytest.approx(2 / 3)


class TestPerRunReportFields:
    def test_wall_and_cache_attached(self, banded_bbc, uni):
        report = simulate_kernel("spmv", banded_bbc, uni, cache=BlockCache())
        assert report.wall_s > 0
        assert report.cache["misses"] > 0
        assert set(report.cache) == {"hits", "misses", "evictions",
                                     "inserts", "hit_rate"}

    def test_second_run_sees_only_its_own_hits(self, banded_bbc, uni):
        """Per-run deltas do not bleed across runs of a shared cache."""
        cache = BlockCache()
        first = simulate_kernel("spmv", banded_bbc, uni, cache=cache)
        second = simulate_kernel("spmv", banded_bbc, uni, cache=cache)
        assert first.cache["misses"] > 0
        assert second.cache["misses"] == 0
        assert second.cache["hit_rate"] == pytest.approx(1.0)
        assert second.cache_hit_rate == pytest.approx(1.0)

    def test_legacy_path_also_tracked(self, banded_bbc, uni):
        report = simulate_kernel("spmv", banded_bbc, uni,
                                 cache=BlockCache(), batched=False)
        assert report.wall_s > 0 and report.cache["inserts"] > 0

    def test_parallel_report_wall(self, banded_bbc):
        report = simulate_parallel("spmv", banded_bbc, UniSTC, n_cores=2,
                                   cache=BlockCache())
        assert report.wall_s == pytest.approx(
            sum(r.wall_s for r in report.per_core))


class TestSweepRows:
    def test_rows_include_wall_and_hit_rate(self, sweep):
        rows = rows_from_results(sweep.run())
        assert len(ROW_COLUMNS) == 8
        for row in rows:
            assert len(row) == len(ROW_COLUMNS)
            wall_s = row[ROW_COLUMNS.index("wall_s")]
            hit = row[ROW_COLUMNS.index("cache_hit_rate")]
            assert wall_s > 0
            assert 0.0 <= hit <= 1.0


class TestEngineSpans:
    def test_kernel_and_batch_spans_nest(self, banded_bbc, uni):
        obs.enable()
        simulate_kernel("spmv", banded_bbc, uni, cache=BlockCache())
        spans = obs.tracer().spans
        kernels = [s for s in spans if s.name == "kernel"]
        batches = [s for s in spans if s.name == "batch"]
        assert len(kernels) == 1
        assert batches and all(b.parent == "kernel" for b in batches)
        assert kernels[0].args["kernel"] == "spmv"

    def test_engine_metrics_emitted(self, banded_bbc, uni):
        obs.enable()
        simulate_kernel("spmv", banded_bbc, uni, cache=BlockCache())
        snap = obs.metrics().snapshot()
        assert "sim.t1_tasks" in snap["counters"]
        assert "sim.cache.misses" in snap["counters"]
        assert "sim.run_wall_s" in snap["histograms"]

    def test_parallel_core_spans(self, banded_bbc):
        obs.enable()
        simulate_parallel("spmv", banded_bbc, UniSTC, n_cores=3,
                          cache=BlockCache())
        spans = obs.tracer().spans
        cores = [s for s in spans if s.name == "core"]
        assert len(cores) == 3
        assert all(c.parent == "parallel" for c in cores)

    def test_disabled_leaves_no_records(self, banded_bbc, uni):
        simulate_kernel("spmv", banded_bbc, uni, cache=BlockCache())
        assert obs.tracer().spans == []


class TestRunnerEvents:
    def test_retry_emits_event_and_counter(self, sweep):
        calls = {"n": 0}
        original = sweep.run_case

        def flaky(case):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SimulationError("transient")
            return original(case)

        sweep.run_case = flaky
        obs.enable()
        runner = ResilientRunner(
            sweep, retry=RetryPolicy(max_retries=1, base_delay_s=0.0),
            sleep=lambda s: None,
        )
        summary = runner.run()
        assert summary.n_failed == 0
        events = [e.name for e in obs.tracer().events]
        assert "retry" in events
        assert obs.metrics().counter("runner.retries").total == 1
        attempts = [s for s in obs.tracer().spans if s.name == "case_attempt"]
        assert len(attempts) == len(sweep.cases()) + 1  # one retried

    def test_journal_roundtrips_wall_and_cache(self, sweep, tmp_path):
        journal = tmp_path / "journal.jsonl"
        ResilientRunner(sweep, journal_path=journal).run()
        resumed = ResilientRunner(
            sweep, journal_path=journal, resume=True).run()
        assert resumed.n_resumed == len(sweep.cases())
        for result in resumed.results:
            assert result.report.wall_s > 0
            assert "hit_rate" in result.report.cache

    def test_old_journals_without_new_fields_still_load(self, sweep, tmp_path):
        journal = tmp_path / "journal.jsonl"
        ResilientRunner(sweep, journal_path=journal).run()
        lines = journal.read_text().splitlines()
        rewritten = [lines[0]]
        for line in lines[1:]:
            entry = json.loads(line)
            entry["report"].pop("wall_s")
            entry["report"].pop("cache")
            rewritten.append(json.dumps(entry))
        journal.write_text("\n".join(rewritten) + "\n")
        resumed = ResilientRunner(
            sweep, journal_path=journal, resume=True).run()
        assert resumed.n_resumed == len(sweep.cases())
        assert all(r.report.wall_s == 0.0 for r in resumed.results)


class TestCLIArtifacts:
    def test_kernels_trace_and_metrics(self, tmp_path):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        rc = main(["kernels", "--matrix", "band:64:8:0.3",
                   "--kernel", "spmv", "--stc", "ds-stc,uni-stc",
                   "--trace", str(trace), "--metrics", str(metrics)])
        assert rc == 0
        assert not obs.enabled()  # CLI switches it back off
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"kernel", "batch"} <= names
        snap = json.loads(metrics.read_text())
        assert "sim.cycles" in snap["counters"]

    def test_corpus_trace_has_nested_hierarchy(self, tmp_path):
        trace = tmp_path / "corpus.json"
        rc = main(["corpus", "--limit", "2", "--kernel", "spmv",
                   "--stc", "ds-stc,uni-stc", "--trace", str(trace)])
        assert rc == 0
        events = json.loads(trace.read_text())["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]

        def covers(a, b):
            return a["ts"] <= b["ts"] and a["ts"] + a["dur"] >= b["ts"] + b["dur"]

        by_name = {}
        for event in complete:
            by_name.setdefault(event["name"], []).append(event)
        for name in ("sweep", "matrix", "kernel", "batch"):
            assert by_name.get(name), f"missing {name} spans"
        (sweep_span,) = by_name["sweep"]
        assert all(covers(sweep_span, m) for m in by_name["matrix"])
        assert all(any(covers(m, k) for m in by_name["matrix"])
                   for k in by_name["kernel"])
        assert all(any(covers(k, b) for k in by_name["kernel"])
                   for b in by_name["batch"])

    def test_trace_jsonl_suffix(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc = main(["kernels", "--matrix", "band:64:8:0.3", "--kernel", "spmv",
                   "--stc", "ds-stc,uni-stc", "--trace", str(trace)])
        assert rc == 0
        rows = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r["name"] == "kernel" for r in rows)

    def test_profile_command(self, capsys):
        rc = main(["profile", "--matrix", "band:64:8:0.3",
                   "--kernel", "spmv", "--stc", "ds-stc,uni-stc",
                   "--repeat", "2"])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "hottest spans" in printed
        assert "cache hit (%)" in printed
        assert not obs.enabled()

    def test_faults_metrics_flag(self, tmp_path):
        metrics = tmp_path / "m.json"
        rc = main(["faults", "--matrix", "band:64:8:0.3", "--trials", "6",
                   "--metrics", str(metrics)])
        assert rc == 0
        json.loads(metrics.read_text())  # valid snapshot, content optional

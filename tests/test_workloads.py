"""Tests for the workload generators (SuiteSparse/DLMC substitutes)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.formats import BBCMatrix
from repro.workloads import representative, suitesparse, synthetic
from repro.workloads.dlmc import SPARSITIES, dlmc_corpus, pruned_weight
from repro.workloads.dnn import RESNET50_LAYERS, TRANSFORMER_LAYERS, resnet50_layers


class TestSynthetic:
    def test_random_uniform_density(self):
        m = synthetic.random_uniform(200, 200, 0.05, seed=1)
        assert m.nnz == pytest.approx(2000, rel=0.02)

    def test_random_uniform_deterministic(self):
        a = synthetic.random_uniform(64, 64, 0.1, seed=9)
        b = synthetic.random_uniform(64, 64, 0.1, seed=9)
        assert a == b

    def test_random_uniform_zero_density(self):
        assert synthetic.random_uniform(16, 16, 0.0).nnz == 0

    def test_random_uniform_full_density(self):
        assert synthetic.random_uniform(8, 8, 1.0, seed=0).nnz == 64

    def test_random_uniform_rejects_bad_density(self):
        with pytest.raises(ShapeError):
            synthetic.random_uniform(8, 8, 1.5)

    def test_banded_within_band(self):
        m = synthetic.banded(50, 3, 1.0, seed=0)
        assert np.all(np.abs(m.rows - m.cols) <= 3)

    def test_banded_diagonal_always_present(self):
        m = synthetic.banded(40, 5, 0.1, seed=2)
        dense = m.to_dense()
        assert np.all(np.diag(dense) != 0)

    def test_power_law_has_heavy_rows(self):
        m = synthetic.power_law(256, avg_row_nnz=6.0, seed=3)
        from repro.formats.csr import CSRMatrix

        row_nnz = CSRMatrix.from_coo(m).row_nnz()
        assert row_nnz.max() > 4 * max(1.0, np.median(row_nnz))

    def test_block_dense_blocks_filled(self):
        m = synthetic.block_dense(64, block=16, block_density=0.05, fill=0.9, seed=4)
        bbc = BBCMatrix.from_coo(m)
        assert bbc.nnz_per_block().mean() > 30

    def test_long_rows_heavy(self):
        m = synthetic.long_rows(128, heavy_rows=2, heavy_density=0.9,
                                background_density=0.005, seed=5)
        from repro.formats.csr import CSRMatrix

        row_nnz = CSRMatrix.from_coo(m).row_nnz()
        assert (row_nnz > 64).sum() >= 2

    def test_diagonal_stencil_offsets(self):
        m = synthetic.diagonal_stencil(32, offsets=(-1, 0, 1), seed=6)
        assert set(np.unique(m.cols - m.rows)) == {-1, 0, 1}

    def test_poisson2d_structure(self):
        m = synthetic.poisson2d(4)
        dense = m.to_dense()
        assert dense.shape == (16, 16)
        assert np.allclose(dense, dense.T)
        assert np.all(np.diag(dense) == 4.0)
        # Diagonally dominant and singular-free interior stencil.
        assert np.all(np.linalg.eigvalsh(dense) > 0)


class TestSuiteSparseCorpus:
    def test_specs_deterministic(self):
        a = [s.name for s in suitesparse.corpus(sizes=(128,))]
        b = [s.name for s in suitesparse.corpus(sizes=(128,))]
        assert a == b

    def test_unique_names(self):
        names = [s.name for s in suitesparse.corpus()]
        assert len(names) == len(set(names))

    def test_family_filter(self):
        specs = suitesparse.corpus(families=("banded",))
        assert specs and all(s.family == "banded" for s in specs)

    def test_limit(self):
        assert len(suitesparse.corpus(limit=5)) == 5

    def test_small_corpus_materialises(self):
        for name, matrix in suitesparse.iter_matrices(suitesparse.small_corpus(limit=4)):
            assert matrix.nnz > 0, name
            assert matrix.shape[0] == matrix.shape[1] == 128

    def test_density_axis_spans_paper_range(self):
        """The corpus must cover the Fig. 20 density axis broadly."""
        densities = []
        for spec in suitesparse.small_corpus(limit=14):
            bbc = BBCMatrix.from_coo(spec.matrix())
            densities.append(representative.mean_products_per_task(bbc))
        assert min(densities) < 32
        assert max(densities) > 512


class TestRepresentative:
    def test_table_vii_catalogue(self):
        assert [i.name for i in representative.TABLE_VII] == [
            "consph", "shipsec1", "crankseg_2", "cant",
            "opt1", "pdb1HYS", "pwtk", "gupta3",
        ]
        densities = [i.paper_inter_prod_per_block for i in representative.TABLE_VII]
        assert densities == sorted(densities)
        assert densities[0] == 164.9 and densities[-1] == 1154.1

    @pytest.mark.parametrize("name", ["consph", "cant", "gupta3"])
    def test_calibration_hits_target(self, name):
        info = representative.INFO_BY_NAME[name]
        matrix = representative.build_matrix(name, n=256)
        measured = representative.mean_products_per_task(BBCMatrix.from_coo(matrix))
        assert measured == pytest.approx(info.paper_inter_prod_per_block, rel=0.35)

    def test_all_eight_buildable(self):
        mats = representative.representative_matrices(n=128)
        assert len(mats) == 8
        assert all(m.nnz > 0 for m in mats.values())

    def test_uncalibrated_build(self):
        m = representative.build_matrix("consph", n=128, calibrate=False)
        assert m.nnz > 0


class TestDLMC:
    def test_sparsity_levels(self):
        assert SPARSITIES == (0.70, 0.98)

    @pytest.mark.parametrize("sparsity", [0.7, 0.98])
    def test_pruned_weight_sparsity(self, sparsity):
        w = pruned_weight(128, 256, sparsity, seed=0)
        assert w.density() == pytest.approx(1 - sparsity, abs=0.02)

    def test_structured_exact_per_row(self):
        w = pruned_weight(64, 100, 0.9, structured=True, seed=1)
        from repro.formats.csr import CSRMatrix

        row_nnz = CSRMatrix.from_coo(w).row_nnz()
        assert (row_nnz == 10).all()

    def test_unstructured_imbalanced(self):
        w = pruned_weight(128, 256, 0.9, seed=2)
        from repro.formats.csr import CSRMatrix

        row_nnz = CSRMatrix.from_coo(w).row_nnz()
        assert row_nnz.max() > 2 * max(1.0, np.median(row_nnz))

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ShapeError):
            pruned_weight(8, 8, 1.0)

    def test_corpus_matches_layers(self):
        corpus = dlmc_corpus("transformer", 0.7)
        assert len(corpus) == len(TRANSFORMER_LAYERS)
        for layer, weight in corpus:
            assert weight.shape == (layer.m, layer.k)

    def test_corpus_rejects_unknown_model(self):
        with pytest.raises(ShapeError):
            dlmc_corpus("vgg")


class TestDNNCatalogues:
    def test_resnet_scaling_preserves_block_multiple(self):
        for layer in resnet50_layers(0.1):
            assert layer.m % 16 == 0 and layer.k % 16 == 0 and layer.n % 16 == 0

    def test_full_catalogues_nonempty(self):
        assert len(RESNET50_LAYERS) >= 5
        assert len(TRANSFORMER_LAYERS) == 4

    def test_kinds(self):
        kinds = {l.kind for l in RESNET50_LAYERS}
        assert kinds == {"conv", "linear"}
        assert all(l.kind == "linear" for l in TRANSFORMER_LAYERS)

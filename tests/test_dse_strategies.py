"""Tests for the search strategies (repro.dse.strategies)."""

from types import SimpleNamespace

import pytest

from repro.dse.space import DesignSpace
from repro.dse.strategies import (
    EvolutionarySearch,
    GridSearch,
    RandomSearch,
    make_strategy,
    strategy_names,
)
from repro.errors import ConfigError


def space_3x3() -> DesignSpace:
    return DesignSpace.build(
        config_axes={"num_dpgs": [4, 8, 16], "tile": [2, 4, 8]},
        matrices=["rep:cant"], kernels=["spmv"],
    )


def drive(strategy, space, fitness=None):
    """Run the ask loop to exhaustion, faking evaluation results."""
    evaluated = {}
    batches = []
    while True:
        batch = [c for c in strategy.propose(space, evaluated)
                 if c not in evaluated]
        if not batch:
            break
        batches.append(batch)
        for c in batch:
            eed = fitness(c) if fitness else 1.0
            evaluated[c] = SimpleNamespace(eed=eed)
    return evaluated, batches


class TestGridSearch:
    def test_exhaustive_by_default(self):
        space = space_3x3()
        evaluated, batches = drive(GridSearch(), space)
        assert len(evaluated) == 9
        assert batches[0] == space.candidates()

    def test_budget_is_prefix(self):
        space = space_3x3()
        evaluated, _ = drive(GridSearch(budget=4), space)
        assert list(evaluated) == space.candidates()[:4]

    def test_signature(self):
        assert GridSearch(budget=4).signature() == "grid:4"

    def test_skips_already_evaluated(self):
        space = space_3x3()
        pre = {space.candidates()[0]: SimpleNamespace(eed=1.0)}
        batch = GridSearch().propose(space, dict(pre))
        assert space.candidates()[0] not in batch
        assert len(batch) == 8


class TestRandomSearch:
    def test_deterministic_for_seed(self):
        space = space_3x3()
        a, _ = drive(RandomSearch(seed=0, budget=5), space)
        b, _ = drive(RandomSearch(seed=0, budget=5), space)
        assert list(a) == list(b)
        assert len(a) == 5

    def test_seed_changes_sample(self):
        space = space_3x3()
        a, _ = drive(RandomSearch(seed=0, budget=5), space)
        b, _ = drive(RandomSearch(seed=1, budget=5), space)
        assert list(a) != list(b)

    def test_no_replacement(self):
        space = space_3x3()
        evaluated, _ = drive(RandomSearch(seed=3, budget=20), space)
        assert len(evaluated) == 9  # whole space, no duplicates

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ConfigError):
            RandomSearch(seed=0, budget=0)

    def test_signature(self):
        assert RandomSearch(seed=7, budget=5).signature() == "random:7:5"


class TestEvolutionarySearch:
    def test_deterministic_for_seed(self):
        space = space_3x3()
        fitness = lambda c: float(dict(c)["num_dpgs"])  # noqa: E731
        a, a_batches = drive(
            EvolutionarySearch(seed=0, budget=7, population=3, survivors=2),
            space, fitness)
        b, b_batches = drive(
            EvolutionarySearch(seed=0, budget=7, population=3, survivors=2),
            space, fitness)
        assert list(a) == list(b)
        assert a_batches == b_batches
        assert len(a) == 7

    def test_mutates_best_survivor(self):
        space = space_3x3()
        strat = EvolutionarySearch(seed=0, budget=9, population=3, survivors=1)
        fitness = lambda c: float(dict(c)["num_dpgs"])  # noqa: E731
        evaluated = {}
        gen0 = strat.propose(space, evaluated)
        for c in gen0:
            evaluated[c] = SimpleNamespace(eed=fitness(c))
        best = max(gen0, key=fitness)
        gen1 = strat.propose(space, evaluated)
        neighbours = set(space.neighbours(best))
        assert any(c in neighbours for c in gen1)

    def test_budget_respected(self):
        space = space_3x3()
        evaluated, _ = drive(
            EvolutionarySearch(seed=0, budget=4, population=6, survivors=3),
            space)
        assert len(evaluated) == 4

    def test_treats_failures_as_visited(self):
        space = space_3x3()
        strat = EvolutionarySearch(seed=0, budget=9, population=3, survivors=2)
        evaluated = {c: None for c in strat.propose(space, {})}
        batch = strat.propose(space, evaluated)
        assert batch
        assert not any(c in evaluated for c in batch)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigError):
            EvolutionarySearch(budget=0)
        with pytest.raises(ConfigError):
            EvolutionarySearch(population=0)
        with pytest.raises(ConfigError):
            EvolutionarySearch(survivors=0)


class TestMakeStrategy:
    def test_names(self):
        assert isinstance(make_strategy("grid"), GridSearch)
        assert isinstance(make_strategy("exhaustive"), GridSearch)
        assert isinstance(make_strategy("random", seed=1), RandomSearch)
        assert isinstance(make_strategy("evolve"), EvolutionarySearch)
        assert isinstance(make_strategy("halving"), EvolutionarySearch)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            make_strategy("anneal")

    def test_default_budgets(self):
        assert make_strategy("random").budget == 8
        assert make_strategy("evolve").budget == 12
        assert make_strategy("grid").budget == 0

    def test_strategy_names_cover_cli(self):
        for name in strategy_names():
            assert make_strategy(name) is not None

"""Tests for the hardened block-cache persistence layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.unistc import UniSTC
from repro.errors import FormatError
from repro.formats.bbc import BBCMatrix
from repro.sim import cachestore, engine
from repro.sim.engine import simulate_kernel
from repro.workloads.synthetic import banded


@pytest.fixture(autouse=True)
def fresh_engine_cache():
    engine.clear_cache()
    yield
    engine.clear_cache()


def warm_cache():
    bbc = BBCMatrix.from_coo(banded(96, 10, 0.4, seed=1))
    simulate_kernel("spmv", bbc, UniSTC())
    assert engine.cache_size() > 0


class TestChecksum:
    def test_roundtrip_carries_checksum(self, tmp_path):
        warm_cache()
        path = tmp_path / "cache.npz"
        written = cachestore.save_cache(path)
        with np.load(path, allow_pickle=True) as data:
            assert int(data["version"][0]) == cachestore.CACHE_VERSION
            assert "checksum" in data
        engine.clear_cache()
        assert cachestore.load_cache(path) == written

    def test_payload_tamper_is_rejected(self, tmp_path):
        """A bit-level upset anywhere in the payload fails the checksum."""
        warm_cache()
        path = tmp_path / "cache.npz"
        cachestore.save_cache(path)
        data = dict(np.load(path, allow_pickle=True))
        data["scalars"] = data["scalars"].copy()
        data["scalars"][0, 0] += 1  # one cycle count nudged
        np.savez_compressed(path, **data)
        with pytest.raises(FormatError, match="checksum"):
            cachestore.load_cache(path)

    def test_entry_count_disagreement_is_rejected(self, tmp_path):
        warm_cache()
        path = tmp_path / "cache.npz"
        cachestore.save_cache(path)
        data = dict(np.load(path, allow_pickle=True))
        data["scalars"] = data["scalars"][:-1]
        np.savez_compressed(path, **data)
        with pytest.raises(FormatError):
            cachestore.load_cache(path)


class TestMalformedArchives:
    def test_truncated_file(self, tmp_path):
        warm_cache()
        path = tmp_path / "cache.npz"
        cachestore.save_cache(path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(FormatError):
            cachestore.load_cache(path)

    def test_zeroed_span_inside_archive(self, tmp_path):
        warm_cache()
        path = tmp_path / "cache.npz"
        cachestore.save_cache(path)
        blob = bytearray(path.read_bytes())
        mid = len(blob) // 2
        blob[mid: mid + 64] = bytes(64)
        path.write_bytes(bytes(blob))
        with pytest.raises(FormatError):
            cachestore.load_cache(path)

    def test_not_an_archive_at_all(self, tmp_path):
        path = tmp_path / "cache.npz"
        path.write_bytes(b"definitely not a zip file")
        with pytest.raises(FormatError):
            cachestore.load_cache(path)

    def test_missing_field(self, tmp_path):
        warm_cache()
        path = tmp_path / "cache.npz"
        cachestore.save_cache(path)
        data = dict(np.load(path, allow_pickle=True))
        del data["checksum"]
        np.savez_compressed(path, **data)
        with pytest.raises(FormatError):
            cachestore.load_cache(path)

    def test_failed_load_leaves_memory_cache_untouched(self, tmp_path):
        warm_cache()
        before = engine.cache_size()
        path = tmp_path / "cache.npz"
        path.write_bytes(b"junk")
        with pytest.raises(FormatError):
            cachestore.load_cache(path, merge=False)
        assert engine.cache_size() == before


class TestLoadOrCold:
    def test_missing_file_is_silent_cold_start(self, tmp_path, caplog):
        with caplog.at_level("WARNING"):
            assert cachestore.load_cache_or_cold(tmp_path / "nope.npz") == 0
        assert not caplog.records

    def test_corrupt_file_warns_and_rebuilds_cold(self, tmp_path, caplog):
        path = tmp_path / "cache.npz"
        path.write_bytes(b"junk")
        with caplog.at_level("WARNING", logger="repro.sim.cachestore"):
            assert cachestore.load_cache_or_cold(path) == 0
        assert any("rebuilding cold" in r.message for r in caplog.records)

    def test_valid_file_loads_normally(self, tmp_path):
        warm_cache()
        path = tmp_path / "cache.npz"
        written = cachestore.save_cache(path)
        engine.clear_cache()
        assert cachestore.load_cache_or_cold(path) == written
        assert engine.cache_size() == written

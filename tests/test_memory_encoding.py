"""Tests for the memory/roofline model and the encoding-cost model."""

import numpy as np
import pytest

from repro.arch.unistc import UniSTC
from repro.errors import ConfigError, ShapeError
from repro.formats import BBCMatrix
from repro.formats.encoding_cost import (
    amortised_speedup,
    break_even_invocations,
    encoding_cost,
)
from repro.kernels.vector import SparseVector
from repro.sim.engine import simulate_kernel
from repro.sim.memory import (
    MemoryConfig,
    kernel_traffic_bytes,
    memory_cycles,
    roofline,
    spgemm_output_nnz,
)
from repro.workloads.synthetic import banded, long_rows, random_uniform


@pytest.fixture(scope="module")
def bbc():
    return BBCMatrix.from_coo(banded(160, 16, 0.4, seed=1))


class TestTraffic:
    def test_spmv_traffic_components(self, bbc):
        traffic = kernel_traffic_bytes("spmv", bbc, c_writes=100)
        assert traffic["read_a"] == bbc.storage_bytes()
        assert traffic["read_b"] == bbc.shape[1] * 8
        assert traffic["write_c"] == 100 * 12

    def test_spmm_traffic_scales_with_b_cols(self, bbc):
        t32 = kernel_traffic_bytes("spmm", bbc, b_cols=32)
        t64 = kernel_traffic_bytes("spmm", bbc, b_cols=64)
        assert t64["read_b"] == 2 * t32["read_b"]

    def test_spgemm_reads_both_encodings(self, bbc):
        traffic = kernel_traffic_bytes("spgemm", bbc)
        assert traffic["read_b"] == bbc.storage_bytes()  # B defaults to A

    def test_spmspv_reads_only_nonzeros(self, bbc):
        x = SparseVector(bbc.shape[1], [0, 1], [1.0, 1.0])
        traffic = kernel_traffic_bytes("spmspv", bbc, x=x)
        assert traffic["read_b"] == 2 * 12

    def test_spmspv_requires_x(self, bbc):
        with pytest.raises(ShapeError):
            kernel_traffic_bytes("spmspv", bbc)

    def test_unknown_kernel(self, bbc):
        with pytest.raises(ShapeError):
            kernel_traffic_bytes("gemm", bbc)


class TestMemoryCycles:
    def test_bandwidth_division(self):
        assert memory_cycles({"read_a": 100.0}, MemoryConfig(bytes_per_cycle=10)) == 10

    def test_zero_traffic_costs_zero_cycles(self):
        assert memory_cycles({"read_a": 0.0}) == 0
        assert memory_cycles({}) == 0

    def test_positive_traffic_costs_at_least_one_cycle(self):
        assert memory_cycles({"read_a": 0.5}) == 1

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            MemoryConfig(bytes_per_cycle=0)


class TestRoofline:
    def test_spmv_is_memory_bound(self, bbc):
        """Classic result: SpMV streams the matrix once per use."""
        report = simulate_kernel("spmv", bbc, UniSTC())
        roof = roofline(report, bbc)
        assert roof.bound == "memory"
        assert roof.effective_cycles >= report.cycles

    def test_dense_spgemm_compute_bound_at_high_bandwidth(self):
        """SpGEMM's arithmetic intensity grows with density; with a
        bandwidth-rich configuration a dense product is compute-bound
        (small problems at the default 2.5 B/cycle stay memory-bound —
        the classic roofline crossover)."""
        dense = BBCMatrix.from_coo(random_uniform(96, 96, 0.9, seed=2))
        report = simulate_kernel("spgemm", dense, UniSTC())
        roof = roofline(report, dense, config=MemoryConfig(bytes_per_cycle=32))
        assert roof.bound == "compute"
        default_roof = roofline(report, dense)
        assert default_roof.memory_cycles > roof.memory_cycles

    def test_higher_bandwidth_shifts_bound(self, bbc):
        report = simulate_kernel("spgemm", bbc, UniSTC())
        slow = roofline(report, bbc, config=MemoryConfig(bytes_per_cycle=0.01))
        fast = roofline(report, bbc, config=MemoryConfig(bytes_per_cycle=1e9))
        assert slow.bound == "memory"
        assert fast.bound == "compute"
        assert fast.effective_cycles == report.cycles

    def test_arithmetic_intensity_positive(self, bbc):
        report = simulate_kernel("spmv", bbc, UniSTC())
        assert roofline(report, bbc).arithmetic_intensity > 0

    def test_arithmetic_intensity_is_products_per_byte(self, bbc):
        """AI must measure the workload, not the architecture's speed:
        useful MACs over bytes moved, independent of compute cycles."""
        report = simulate_kernel("spmv", bbc, UniSTC())
        roof = roofline(report, bbc)
        assert roof.products == report.products
        assert roof.arithmetic_intensity == pytest.approx(
            report.products / roof.traffic_bytes
        )
        slower = roofline(report, bbc, config=MemoryConfig(bytes_per_cycle=0.1))
        assert slower.arithmetic_intensity == roof.arithmetic_intensity


class TestSpGEMMOutputNnz:
    """The sparse boolean product against the dense reference."""

    def _dense_nnz(self, a, b):
        return int(np.count_nonzero(
            (a.to_dense() != 0).astype(np.int64) @ (b.to_dense() != 0).astype(np.int64)
        ))

    def test_matches_dense_on_small_matrices(self):
        cases = [
            (random_uniform(64, 80, 0.05, seed=1), random_uniform(80, 48, 0.08, seed=2)),
            (banded(96, 8, 0.6, seed=3), banded(96, 12, 0.4, seed=4)),
            (long_rows(64, heavy_rows=2, seed=5), random_uniform(64, 64, 0.02, seed=6)),
        ]
        for a_coo, b_coo in cases:
            a, b = BBCMatrix.from_coo(a_coo), BBCMatrix.from_coo(b_coo)
            assert spgemm_output_nnz(a, b) == self._dense_nnz(a, b)

    def test_defaults_to_a_squared(self):
        a = BBCMatrix.from_coo(banded(64, 8, 0.5, seed=7))
        assert spgemm_output_nnz(a) == self._dense_nnz(a, a)

    def test_empty_operand_yields_zero(self):
        a = BBCMatrix.from_coo(random_uniform(64, 64, 0.0, seed=1))
        dense = BBCMatrix.from_coo(random_uniform(64, 64, 0.2, seed=2))
        assert spgemm_output_nnz(a, dense) == 0
        assert spgemm_output_nnz(dense, a) == 0

    def test_rejects_inner_mismatch(self):
        a = BBCMatrix.from_coo(random_uniform(64, 80, 0.1, seed=1))
        with pytest.raises(ShapeError):
            spgemm_output_nnz(a, a)

    def test_structural_coords_match_dense(self):
        for coo in (random_uniform(80, 112, 0.06, seed=8), banded(96, 16, 0.5, seed=9)):
            m = BBCMatrix.from_coo(coo)
            rows, cols = m.structural_coords()
            got = set(zip(rows.tolist(), cols.tolist()))
            r, c = np.nonzero(m.to_dense())
            assert got == set(zip(r.tolist(), c.tolist()))


class TestEncodingCost:
    def test_spmv_equivalents_order_of_magnitude(self, bbc):
        """The paper: conversion ~ a few hundred SpMV operations... our
        model lands in the single-to-tens range per the op-count ratio
        (their figure includes memory-system effects)."""
        cost = encoding_cost(BBCMatrix.from_coo(banded(256, 24, 0.3, seed=3)).to_coo())
        assert 2 < cost.spmv_equivalents < 50

    def test_cost_scales_superlinearly(self):
        small = encoding_cost(banded(64, 8, 0.5, seed=1))
        large = encoding_cost(banded(512, 8, 0.5, seed=1))
        assert large.encode_ops > 8 * small.encode_ops

    def test_break_even_finite_when_saving(self):
        cost = encoding_cost(banded(128, 8, 0.5, seed=1))
        invocations = break_even_invocations(cost, 1000.0, 400.0)
        assert 0 < invocations < float("inf")

    def test_break_even_infinite_without_saving(self):
        cost = encoding_cost(banded(128, 8, 0.5, seed=1))
        assert break_even_invocations(cost, 400.0, 400.0) == float("inf")

    def test_amortised_speedup_approaches_raw(self):
        """With many invocations the encoding cost vanishes (§VI-B)."""
        cost = encoding_cost(banded(128, 8, 0.5, seed=1))
        few = amortised_speedup(cost, 1000.0, 400.0, invocations=2)
        many = amortised_speedup(cost, 1000.0, 400.0, invocations=10_000)
        assert few < many
        assert many == pytest.approx(1000.0 / 400.0, rel=0.01)

    def test_rejects_bad_inputs(self):
        cost = encoding_cost(banded(64, 8, 0.5, seed=1))
        with pytest.raises(ConfigError):
            break_even_invocations(cost, 0.0, 1.0)
        with pytest.raises(ConfigError):
            amortised_speedup(cost, 10.0, 5.0, invocations=0)

"""The import-layering lint passes on the shipped tree and catches regressions."""

import subprocess
import sys
from pathlib import Path

TOOL = Path(__file__).resolve().parents[1] / "tools" / "check_layering.py"

sys.path.insert(0, str(TOOL.parent))
from check_layering import LAYERS, NAME_DISPATCH, PREFIX_SNIFF  # noqa: E402


def test_tree_is_clean():
    proc = subprocess.run([sys.executable, str(TOOL)],
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
    assert "layering OK" in proc.stdout


def test_rank_ordering_matches_architecture():
    assert LAYERS["formats"] < LAYERS["arch"] < LAYERS["sim"]
    assert LAYERS["registry"] < LAYERS["sim"]
    assert LAYERS["sim"] < LAYERS["resilience"] <= LAYERS["perf"]
    assert LAYERS["dse"] < LAYERS["runtime"] < LAYERS["cli"]


def test_prefix_sniff_pattern():
    assert PREFIX_SNIFF.search('if name.startswith("uni-stc"):')
    assert PREFIX_SNIFF.search("stc.startswith('nv-dtc-2:4')")
    assert not PREFIX_SNIFF.search('name.startswith("band:")')


def test_dispatch_pattern_allows_data_tables():
    assert NAME_DISPATCH.search('"uni-stc": UniSTC,')
    assert NAME_DISPATCH.search("'rm-stc': RmSTC}")
    assert not NAME_DISPATCH.search('"uni-stc": 75.0,')
    assert not NAME_DISPATCH.search('"ds-stc": [1, 2],')

"""The bounded LRU block cache: stats, bound, sharing, engine wiring."""

import numpy as np
import pytest

from repro.arch.base import BlockResult
from repro.arch.unistc import UniSTC
from repro.errors import ConfigError
from repro.formats.bbc import BBCMatrix
from repro.kernels.batched import kernel_task_batches
from repro.sim import engine
from repro.sim.blockcache import BlockCache
from repro.sim.engine import simulate_batches, simulate_kernel
from repro.sim.parallel import (
    block_row_work,
    partition_block_rows,
    simulate_parallel,
)
from repro.workloads import synthetic


def _key(i):
    return ("stc", bytes([i]) * 4, bytes([i]) * 2)


def _result(i):
    return BlockResult(cycles=i, products=i)


@pytest.fixture()
def bbc():
    return BBCMatrix.from_coo(synthetic.banded(192, 24, 0.4, seed=11))


class TestStats:
    def test_hit_miss_insert_counting(self):
        cache = BlockCache()
        assert cache.lookup(_key(1)) is None
        cache.insert(_key(1), _result(1))
        assert cache.lookup(_key(1)).cycles == 1
        assert cache.lookup(_key(2)) is None
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.inserts) == (1, 2, 1)
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_zero_before_any_lookup(self):
        assert BlockCache().stats.hit_rate == 0.0

    def test_reset_and_clear(self):
        cache = BlockCache()
        cache.insert(_key(1), _result(1))
        cache.lookup(_key(1))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0 and cache.stats.inserts == 0
        cache.insert(_key(2), _result(2))
        cache.clear(reset_stats=False)
        assert len(cache) == 0 and cache.stats.inserts == 1

    def test_as_dict_round_trips_to_json_scalars(self):
        cache = BlockCache()
        cache.insert(_key(1), _result(1))
        cache.lookup(_key(1))
        d = cache.stats.as_dict()
        assert d == {"hits": 1, "misses": 0, "evictions": 0, "inserts": 1,
                     "hit_rate": 1.0}

    def test_mapping_protocol_is_stats_neutral(self):
        cache = BlockCache()
        cache[_key(1)] = _result(1)
        assert _key(1) in cache
        assert cache[_key(1)].cycles == 1
        assert cache.get(_key(2)) is None
        assert dict(cache.items())
        cache.update({_key(2): _result(2)})
        assert len(cache) == 2 and set(cache) == {_key(1), _key(2)}
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.inserts, stats.evictions) == (
            0, 0, 0, 0,
        )


class TestLRUBound:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigError):
            BlockCache(capacity=0)
        with pytest.raises(ConfigError):
            BlockCache(capacity=-3)

    def test_unbounded_when_none(self):
        cache = BlockCache(capacity=None)
        for i in range(256):
            cache.insert(_key(i), _result(i))
        assert len(cache) == 256 and cache.stats.evictions == 0

    def test_evicts_least_recently_used(self):
        cache = BlockCache(capacity=2)
        cache.insert(_key(1), _result(1))
        cache.insert(_key(2), _result(2))
        cache.lookup(_key(1))  # refresh 1; 2 becomes LRU
        cache.insert(_key(3), _result(3))
        assert _key(1) in cache and _key(3) in cache
        assert _key(2) not in cache
        assert cache.stats.evictions == 1

    def test_mapping_inserts_respect_bound(self):
        cache = BlockCache(capacity=3)
        for i in range(6):
            cache[_key(i)] = _result(i)
        assert len(cache) == 3
        cache.update({_key(i): _result(i) for i in range(10, 16)})
        assert len(cache) == 3

    def test_rebound_shrink_evicts_now(self):
        cache = BlockCache(capacity=None)
        for i in range(8):
            cache.insert(_key(i), _result(i))
        cache.lookup(_key(0))  # refresh 0 so it survives the shrink
        cache.rebound(3)
        assert cache.capacity == 3 and len(cache) == 3
        assert _key(0) in cache and _key(7) in cache
        assert cache.stats.evictions == 5

    def test_rebound_grow_and_unbind_keep_entries(self):
        cache = BlockCache(capacity=2)
        cache.insert(_key(1), _result(1))
        cache.insert(_key(2), _result(2))
        cache.rebound(64)
        assert len(cache) == 2 and cache.stats.evictions == 0
        cache.rebound(None)
        for i in range(10, 110):
            cache.insert(_key(i % 256), _result(i))
        assert len(cache) == 102 and cache.stats.evictions == 0

    def test_rebound_rejects_non_positive(self):
        cache = BlockCache()
        with pytest.raises(ConfigError):
            cache.rebound(0)
        with pytest.raises(ConfigError):
            cache.rebound(-1)

    def test_bound_holds_under_sweep(self, bbc):
        """A capacity-bounded cache never exceeds its bound across a
        multi-kernel sweep, and eviction accounting balances."""
        cache = BlockCache(capacity=16)
        for kernel in ("spmv", "spmm", "spgemm"):
            simulate_kernel(kernel, bbc, UniSTC(), cache=cache)
            assert len(cache) <= 16
        stats = cache.stats
        assert stats.inserts - stats.evictions == len(cache)
        assert stats.evictions > 0  # the sweep has > 16 distinct patterns

    def test_bounded_sweep_same_report_as_unbounded(self, bbc):
        """Eviction changes performance, never results."""
        bounded = simulate_kernel(
            "spgemm", bbc, UniSTC(), cache=BlockCache(capacity=8)
        )
        unbounded = simulate_kernel(
            "spgemm", bbc, UniSTC(), cache=BlockCache(capacity=None)
        )
        assert bounded.cycles == unbounded.cycles
        assert bounded.products == unbounded.products
        assert bounded.energy_pj == pytest.approx(unbounded.energy_pj)


class TestSharing:
    def test_shared_cache_matches_isolated_caches(self, bbc):
        """Cross-core sharing is invisible in the reports: every core
        produces the same SimReport whether the memo is shared or not."""
        kernel = "spgemm"
        shared = simulate_parallel(
            kernel, bbc, UniSTC, n_cores=4, cache=BlockCache()
        )
        work = block_row_work(bbc, kernel)
        parts = partition_block_rows(work, 4)
        isolated = [
            simulate_batches(
                UniSTC(), kernel_task_batches(kernel, bbc, rows=rows),
                kernel=kernel, cache=BlockCache(),
            )
            for rows in parts
        ]
        assert len(shared.per_core) == len(isolated)
        for ours, ref in zip(shared.per_core, isolated):
            assert ours.cycles == ref.cycles
            assert ours.products == ref.products
            assert ours.t1_tasks == ref.t1_tasks
            assert np.array_equal(ours.util_hist.bins, ref.util_hist.bins)
            assert ours.energy_pj == pytest.approx(ref.energy_pj)

    def test_shared_cache_turns_repeats_into_hits(self, bbc):
        cache = BlockCache()
        simulate_parallel("spmv", bbc, UniSTC, n_cores=4, cache=cache)
        first = cache.stats.hits
        simulate_parallel("spmv", bbc, UniSTC, n_cores=4, cache=cache)
        assert cache.stats.misses == cache.stats.inserts  # no re-simulations
        assert cache.stats.hits > first


class TestEngineWiring:
    def test_process_cache_api(self, bbc):
        engine.clear_cache()
        assert engine.cache_size() == 0
        simulate_kernel("spmv", bbc, UniSTC())
        assert engine.cache_size() > 0
        assert engine.get_cache() is engine._BLOCK_CACHE
        assert engine.cache_stats().inserts == engine.cache_size()
        engine.clear_cache()
        assert engine.cache_size() == 0 and engine.cache_stats().lookups == 0

    def test_set_cache_capacity_evicts_now(self, bbc):
        engine.clear_cache()
        simulate_kernel("spgemm", bbc, UniSTC())
        assert engine.cache_size() > 4
        try:
            engine.set_cache_capacity(4)
            assert engine.cache_size() == 4
            assert engine.cache_stats().evictions > 0
        finally:
            engine.set_cache_capacity(None)
            engine.clear_cache()

"""Parity and unit tests for the batched/analytic evaluation fast path.

``repro.arch.fastpath.simulate_blocks`` claims exact equality with the
stepped ``UniSTC.simulate_block`` reference — not "close", *equal*,
because the engine inserts its results into the same block cache the
stepped path reads.  These tests enforce that claim result-for-result
over every kernel's block population and over the model configurations
the experiments actually sweep, plus the closed-form DPG statistics
against the queue-walking decomposition they replace.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import Precision, UniSTCConfig, parse_precision
from repro.arch.dpg import DotProductGenerator, dpg_stats
from repro.arch.fastpath import (
    _dpg_stats_batch,
    decode_a_operands,
    decode_b_operands,
)
from repro.arch.tasks import T1Task
from repro.arch.unistc import UniSTC, decode_a_operand, decode_b_operand
from repro.errors import SimulationError
from repro.formats.bbc import BBCMatrix
from repro.kernels import KERNELS
from repro.kernels.batched import coalesce_raw, kernel_task_batches
from repro.kernels.vector import SparseVector
from repro.registry import create_stc
from repro.workloads.synthetic import banded, random_uniform


def _kernel_tasks(limit_per_kernel: int = 80) -> list:
    """Distinct T1 tasks drawn from every kernel's real block stream."""
    rng = np.random.default_rng(7)
    mats = [
        BBCMatrix.from_coo(banded(64, 10, 0.6, seed=1)),
        BBCMatrix.from_coo(random_uniform(64, 64, 0.08, seed=2)),
    ]
    seen = set()
    tasks = []
    for bbc in mats:
        for kernel in KERNELS:
            operands = {}
            if kernel == "spmspv":
                dense = rng.random(bbc.shape[1]) * (rng.random(bbc.shape[1]) < 0.5)
                operands["x"] = SparseVector.from_dense(dense)
            elif kernel == "spmm":
                operands["b_cols"] = 32
            taken = 0
            for batch in kernel_task_batches(kernel, bbc, **operands):
                raw = coalesce_raw(batch)
                for ai, bi, _ in raw.pairs:
                    key = (raw.a_bytes[ai], raw.b_bytes[bi], raw.n)
                    if key in seen:
                        continue
                    seen.add(key)
                    tasks.append(
                        T1Task(raw.a_bytes[ai], raw.b_bytes[bi], n=raw.n)
                    )
                    taken += 1
                    if taken >= limit_per_kernel:
                        break
                if taken >= limit_per_kernel:
                    break
    return tasks


def _handmade_tasks() -> list:
    """Edge-case blocks the corpus draw may not cover."""
    rng = np.random.default_rng(11)
    tasks = [
        # Empty A, empty pair, dense-dense (uniform full windows).
        T1Task.from_bitmaps(np.zeros((16, 16), bool), np.ones((16, 16), bool)),
        T1Task.from_bitmaps(np.zeros((16, 16), bool), np.zeros((16, 16), bool)),
        T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool)),
        # Dense-vector and empty-vector operands (SpMV/SpMSpV shape).
        T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 1), bool)),
        T1Task.from_bitmaps(np.ones((16, 16), bool), np.zeros((16, 1), bool)),
    ]
    # A single dense A column drives every T3 task of a window onto the
    # same output tile column — the conflict-stall replay path.
    a = np.zeros((16, 16), bool)
    a[:, 0:4] = True
    tasks.append(T1Task.from_bitmaps(a, np.ones((16, 16), bool)))
    # Single dense A row: one output tile row, DPG-bound windows.
    a = np.zeros((16, 16), bool)
    a[0] = True
    tasks.append(T1Task.from_bitmaps(a, np.ones((16, 16), bool)))
    for _ in range(12):
        tasks.append(
            T1Task.from_bitmaps(
                rng.random((16, 16)) < 0.3, rng.random((16, 16)) < 0.3
            )
        )
    for _ in range(6):
        tasks.append(
            T1Task.from_bitmaps(
                rng.random((16, 16)) < 0.4, rng.random((16, 1)) < 0.6
            )
        )
    return tasks


def _assert_results_equal(batch_results, step_results, label: str):
    assert len(batch_results) == len(step_results)
    for i, (got, want) in enumerate(zip(batch_results, step_results)):
        context = f"{label}, task {i}"
        assert got.cycles == want.cycles, context
        assert got.products == want.products, context
        assert np.array_equal(got.util_hist.bins, want.util_hist.bins), context
        assert got.counters.as_dict() == want.counters.as_dict(), context


MODEL_VARIANTS = {
    "default": lambda: UniSTC(),
    "4dpg": lambda: UniSTC(UniSTCConfig(num_dpgs=4)),
    "16dpg": lambda: UniSTC(UniSTCConfig(num_dpgs=16)),
    "no-gating": lambda: UniSTC(UniSTCConfig(dynamic_gating=False)),
    "no-conflict": lambda: UniSTC(UniSTCConfig(conflict_stall=False)),
    "no-adaptive": lambda: UniSTC(UniSTCConfig(adaptive_ordering=False)),
    "fp32": lambda: UniSTC(UniSTCConfig(precision=parse_precision("fp32"))),
    "dot": lambda: UniSTC(ordering="dot"),
    "rowrow": lambda: UniSTC(ordering="rowrow"),
    "n-fill": lambda: UniSTC(fill_order="n"),
}


class TestBatchedParity:
    @pytest.fixture(scope="class")
    def corpus_tasks(self):
        return _kernel_tasks()

    @pytest.mark.parametrize("variant", sorted(MODEL_VARIANTS))
    def test_kernel_blocks_match_stepped(self, corpus_tasks, variant):
        stc = MODEL_VARIANTS[variant]()
        batch = stc.simulate_blocks(corpus_tasks)
        stepped = [stc.simulate_block(t) for t in corpus_tasks]
        _assert_results_equal(batch, stepped, variant)

    def test_handmade_blocks_match_stepped(self):
        tasks = _handmade_tasks()
        for variant, build in MODEL_VARIANTS.items():
            stc = build()
            batch = stc.simulate_blocks(tasks)
            stepped = [stc.simulate_block(t) for t in tasks]
            _assert_results_equal(batch, stepped, f"handmade/{variant}")

    def test_mixed_width_group_order_preserved(self):
        """Matrix-B and vector-B tasks interleaved keep their slots."""
        tasks = _handmade_tasks()
        rng = np.random.default_rng(3)
        order = rng.permutation(len(tasks))
        shuffled = [tasks[i] for i in order]
        stc = UniSTC()
        batch = stc.simulate_blocks(shuffled)
        stepped = [stc.simulate_block(t) for t in shuffled]
        _assert_results_equal(batch, stepped, "mixed-width")

    def test_baseline_models_honour_block_api(self, corpus_tasks):
        """Models without a vectorised path fall back per block."""
        some = corpus_tasks[:20]
        for name in ("ds-stc", "rm-stc"):
            stc = create_stc(name)
            batch = stc.simulate_blocks(some)
            stepped = [stc.simulate_block(t) for t in some]
            _assert_results_equal(batch, stepped, name)

    def test_int_vector_stash_matches_action_vector(self, corpus_tasks):
        stc = UniSTC()
        for result in stc.simulate_blocks(corpus_tasks[:120]):
            vec = result.action_vector_int()
            assert vec is not None
            assert np.array_equal(vec.astype(np.float64), result.action_vector())

    def test_empty_task_list(self):
        assert UniSTC().simulate_blocks([]) == []


class TestFallbackRouting:
    def test_regular_and_conflicted_blocks_never_step(self):
        """Conflict replay is analytic — no simulate_block calls."""
        stc = UniSTC()
        calls = []
        original = stc.simulate_block
        stc.simulate_block = lambda task: (calls.append(task), original(task))[1]
        stc.simulate_blocks(_handmade_tasks())
        assert calls == []

    def test_over_budget_block_routes_to_stepping(self):
        """A T3 task over the MAC budget must behave like the stepped
        path — which raises — rather than being silently mis-scheduled."""
        tiny = UniSTC(UniSTCConfig(precision=Precision("tiny", 64, 32)))
        dense = T1Task.from_bitmaps(
            np.ones((16, 16), bool), np.ones((16, 16), bool)
        )
        with pytest.raises(SimulationError):
            tiny.simulate_block(dense)
        with pytest.raises(SimulationError):
            tiny.simulate_blocks([dense])

    def test_unknown_ordering_matches_stepped_error(self):
        odd = UniSTC(ordering="spiral")
        task = T1Task.from_bitmaps(
            np.eye(16, dtype=bool), np.eye(16, dtype=bool)
        )
        with pytest.raises(SimulationError):
            odd.simulate_block(task)
        with pytest.raises(SimulationError):
            odd.simulate_blocks([task])


class TestBatchedDecode:
    def test_decode_a_matches_scalar(self):
        rng = np.random.default_rng(5)
        stack = rng.random((40, 16, 16)) < 0.35
        tiles, cols = decode_a_operands(stack)
        for p in range(stack.shape[0]):
            ref_tiles, ref_cols = decode_a_operand(stack[p])
            assert np.array_equal(tiles[p], ref_tiles)
            assert np.array_equal(cols[p], ref_cols)

    @pytest.mark.parametrize("width", [16, 1])
    def test_decode_b_matches_scalar(self, width):
        rng = np.random.default_rng(6)
        stack = rng.random((40, 16, width)) < 0.4
        tiles, rows, n_cols = decode_b_operands(stack)
        for p in range(stack.shape[0]):
            ref_tiles, ref_rows, ref_n = decode_b_operand(stack[p])
            assert n_cols == ref_n
            assert np.array_equal(tiles[p], ref_tiles)
            assert np.array_equal(rows[p], ref_rows)

    def test_decode_b_rejects_unknown_width(self):
        with pytest.raises(SimulationError):
            decode_b_operands(np.zeros((3, 16, 7), dtype=bool))


class TestDpgStatsBatch:
    @pytest.mark.parametrize("n_cols,mask", [(4, 0xFFFF), (1, 0xF)])
    def test_matches_decompose(self, n_cols, mask):
        rng = np.random.default_rng(9)
        a = rng.integers(0, 1 << 16, size=3000, dtype=np.int64)
        b = rng.integers(0, mask + 1, size=3000, dtype=np.int64)
        a[:4] = [0, 0xFFFF, 0x8001, 0x00F0]
        b[:4] = [0, mask, mask, 0]
        got = _dpg_stats_batch(a, b, n_cols)
        # The six summary stats are unions/popcounts, insensitive to
        # the queue-fill order — both fills must agree with the batch.
        for fill in ("z", "n"):
            gen = DotProductGenerator(fill)
            for i in range(200):
                out = gen.decompose(int(a[i]), int(b[i]), n_cols)
                assert tuple(got[i]) == (
                    len(out.t4_tasks),
                    out.a_elem_fetches,
                    out.b_elem_fetches,
                    out.a_broadcasts,
                    out.b_broadcasts,
                    out.c_writes,
                ), (n_cols, fill, int(a[i]), int(b[i]))

    def test_matches_memoised_stepping_helper(self):
        rng = np.random.default_rng(10)
        a = rng.integers(0, 1 << 16, size=500, dtype=np.int64)
        b = rng.integers(0, 1 << 16, size=500, dtype=np.int64)
        got = _dpg_stats_batch(a, b, 4)
        for i in range(a.size):
            assert tuple(got[i]) == dpg_stats(int(a[i]), int(b[i]), 4, "z")

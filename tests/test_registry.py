"""Tests for the STC and workload registries."""

import pytest

from repro.arch.config import UniSTCConfig
from repro.energy.area import stc_area_mm2, total_area_mm2
from repro.energy.model import (
    DENSE_PROFILE,
    MONOLITHIC_PROFILE,
    UNI_PROFILE,
    profile_for,
)
from repro.errors import ConfigError, ReproError
from repro.registry import (
    STCEntry,
    WorkloadKind,
    canonical_stc_name,
    create_stc,
    entry_for,
    parse_matrix_spec,
    register_stc,
    register_workload,
    registered_stcs,
    registered_workloads,
    stc_factory,
    stc_family,
    unregister_stc,
    unregister_workload,
)


class TestSTCRegistry:
    def test_all_builtins_registered(self):
        assert registered_stcs() == [
            "ds-stc", "gamma", "nv-dtc", "nv-dtc-2:4", "rm-stc",
            "sigma", "trapezoid", "uni-stc",
        ]

    def test_every_choice_resolves_to_a_model(self):
        for name in registered_stcs():
            model = create_stc(name)
            assert hasattr(model, "name")

    def test_names_round_trip_registry_model_pricing(self):
        """registry name -> model .name -> energy/area lookup."""
        for name in registered_stcs():
            model = create_stc(name)
            entry = entry_for(model.name)
            assert entry.name == name
            assert stc_family(model.name) == entry.family
            # the energy model resolves the instance name too
            assert profile_for(model.name) is profile_for(name)
            if entry.area_model != "none":
                assert stc_area_mm2(model.name) > 0

    def test_duplicate_registration_rejected(self):
        entry = entry_for("uni-stc")
        with pytest.raises(ConfigError, match="already registered"):
            register_stc(entry)

    def test_register_unregister_custom(self):
        entry = STCEntry("my-stc", family="uni-stc", network="hierarchical",
                         factory=lambda: create_stc("uni-stc"))
        register_stc(entry)
        try:
            assert "my-stc" in registered_stcs()
            assert stc_family("my-stc") == "uni-stc"
            assert profile_for("my-stc") is UNI_PROFILE
        finally:
            unregister_stc("my-stc")
        assert "my-stc" not in registered_stcs()

    def test_unregister_unknown_is_an_error(self):
        with pytest.raises(ConfigError):
            unregister_stc("no-such-stc")

    def test_entry_validation(self):
        with pytest.raises(ConfigError, match="non-empty name"):
            STCEntry("", family="x", factory=lambda: None)
        with pytest.raises(ConfigError, match="network"):
            STCEntry("x", family="x", factory=lambda: None, network="mesh")
        with pytest.raises(ConfigError, match="area model"):
            STCEntry("x", family="x", factory=lambda: None, area_model="rtl")
        with pytest.raises(ConfigError, match="positive area_mm2"):
            STCEntry("x", family="x", factory=lambda: None, area_model="fixed")


class TestVariantNames:
    def test_canonical_passthrough(self):
        assert canonical_stc_name("uni-stc") == "uni-stc"

    def test_paren_variant(self):
        assert canonical_stc_name("uni-stc(4dpg)") == "uni-stc"

    def test_bracket_variant(self):
        assert canonical_stc_name("uni-stc[num_dpgs=4,tile=8]") == "uni-stc"

    def test_unknown_name_raises_with_vocabulary(self):
        with pytest.raises(ConfigError, match="choose from"):
            canonical_stc_name("tpu")

    def test_variant_of_unknown_base_raises(self):
        with pytest.raises(ConfigError):
            canonical_stc_name("tpu(v4)")

    def test_configured_instance_prices_as_its_family(self):
        model = create_stc("uni-stc", UniSTCConfig(num_dpgs=4,
                                                   tile_queue_depth=8))
        assert model.name == "uni-stc(4dpg)"
        assert stc_family(model) == "uni-stc"
        assert profile_for(model) is UNI_PROFILE


class TestFactoriesAndFamilies:
    def test_factory_builds_fresh_instances(self):
        build = stc_factory("uni-stc")
        assert build() is not build()

    def test_factory_with_bound_config(self):
        config = UniSTCConfig(num_dpgs=4, tile_queue_depth=8)
        build = stc_factory("uni-stc", config)
        model = build()
        assert model.config.num_dpgs == 4

    def test_bad_config_type_rejected_up_front(self):
        with pytest.raises(ConfigError, match="expects a"):
            stc_factory("uni-stc", object())

    def test_network_families(self):
        assert profile_for("nv-dtc") is DENSE_PROFILE
        assert profile_for("nv-dtc-2:4") is DENSE_PROFILE
        assert profile_for("uni-stc") is UNI_PROFILE
        assert profile_for("gamma") is MONOLITHIC_PROFILE

    def test_unknown_stc_has_no_silent_network_profile(self):
        with pytest.raises(ConfigError):
            profile_for("tpu")

    def test_area_models(self):
        assert stc_area_mm2("uni-stc") == total_area_mm2(UniSTCConfig())
        assert stc_area_mm2("rm-stc") == entry_for("rm-stc").area_mm2
        assert stc_area_mm2("ds-stc") == entry_for("ds-stc").area_mm2

    def test_no_area_model_is_an_error_not_a_default(self):
        with pytest.raises(ConfigError, match="no area model"):
            stc_area_mm2("gamma")


class TestWorkloadRegistry:
    def test_builtin_kinds(self):
        assert registered_workloads() == [
            "band", "corpus", "model", "mtx", "poisson", "random", "rep",
            "rmat",
        ]

    def test_every_synthetic_kind_builds(self):
        assert parse_matrix_spec("band:64:8:0.5").shape == (64, 64)
        assert parse_matrix_spec("random:32:0.2").shape == (32, 32)
        assert parse_matrix_spec("rmat:5").shape == (32, 32)
        assert parse_matrix_spec("poisson:6").shape == (36, 36)
        assert parse_matrix_spec("rep:consph").shape == (256, 256)

    def test_model_kind_builds_block_diagonal_weights(self):
        from repro.workloads.dnn import resnet50_layers

        m = parse_matrix_spec("model:resnet50:0.7:0.05")
        layers = resnet50_layers(0.05)
        assert m.shape == (sum(l.m for l in layers),
                           sum(l.k for l in layers))
        assert m.nnz > 0

    def test_model_kind_defaults(self):
        assert parse_matrix_spec("model:transformer").nnz > 0

    def test_model_kind_bad_args_name_the_grammar(self):
        with pytest.raises(ReproError, match="model:NAME"):
            parse_matrix_spec("model:resnet50:dense")

    def test_unknown_kind_raises(self):
        with pytest.raises(ReproError, match="unknown matrix spec"):
            parse_matrix_spec("banana:1")

    def test_bad_args_name_the_grammar(self):
        with pytest.raises(ReproError, match="band:N:BW:D"):
            parse_matrix_spec("band:64")

    def test_duplicate_workload_rejected(self):
        with pytest.raises(ReproError, match="already registered"):
            register_workload(
                WorkloadKind("band", "banded",
                             lambda parts: parse_matrix_spec("band:8:2:0.5")))

    def test_register_unregister_custom(self):
        kind = WorkloadKind(
            "eye", "diagonal",
            lambda parts: parse_matrix_spec(f"band:{parts[0]}:1:1.0"),
            grammar="eye:N")
        register_workload(kind)
        try:
            assert parse_matrix_spec("eye:16").shape == (16, 16)
        finally:
            unregister_workload("eye")
        with pytest.raises(ReproError):
            parse_matrix_spec("eye:16")

"""Tests for the command-line interface."""

import pytest

from repro.cli import main, parse_matrix_spec
from repro.errors import ReproError


class TestMatrixSpecs:
    def test_band(self):
        m = parse_matrix_spec("band:64:8:0.5")
        assert m.shape == (64, 64)
        assert m.nnz > 0

    def test_random(self):
        m = parse_matrix_spec("random:64:0.1")
        assert m.shape == (64, 64)

    def test_rmat(self):
        assert parse_matrix_spec("rmat:5").shape == (32, 32)

    def test_representative(self):
        m = parse_matrix_spec("rep:consph")
        assert m.shape == (256, 256)

    def test_mtx(self, tmp_path, small_coo):
        from repro.workloads.matrixmarket import write_mtx

        path = tmp_path / "m.mtx"
        write_mtx(path, small_coo)
        assert parse_matrix_spec(f"mtx:{path}") == small_coo

    def test_unknown_spec(self):
        with pytest.raises(ReproError):
            parse_matrix_spec("banana:1")


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Uni-STC" in out
        assert "spgemm" in out

    def test_kernels(self, capsys):
        assert main(["kernels", "--matrix", "band:64:6:0.5",
                     "--kernel", "spmv", "--stc", "ds-stc,uni-stc"]) == 0
        out = capsys.readouterr().out
        assert "uni-stc" in out and "speedup" in out

    def test_kernels_spmspv(self, capsys):
        assert main(["kernels", "--matrix", "random:64:0.1",
                     "--kernel", "spmspv", "--stc", "uni-stc"]) == 0
        assert "spmspv" in capsys.readouterr().out

    def test_kernels_unknown_stc(self, capsys):
        assert main(["kernels", "--stc", "tpu"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_formats(self, capsys):
        assert main(["formats", "--matrix", "band:64:8:0.8"]) == 0
        out = capsys.readouterr().out
        assert "recommended" in out
        assert "bbc" in out

    def test_amg(self, capsys):
        assert main(["amg", "--grid", "10", "--stc", "ds-stc,uni-stc"]) == 0
        out = capsys.readouterr().out
        assert "V-cycles" in out
        assert "spgemm cycles" in out

    def test_area(self, capsys):
        assert main(["area"]) == 0
        out = capsys.readouterr().out
        assert "Total Overhead" in out
        assert "A100" in out

    def test_area_dpg_sweep(self, capsys):
        assert main(["area", "--dpgs", "4"]) == 0
        assert main(["area", "--dpgs", "16"]) == 0

    def test_trace(self, capsys):
        assert main(["trace", "--density", "0.3", "--cycles", "2"]) == 0
        out = capsys.readouterr().out
        assert "cycle 0" in out
        assert "intermediate products" in out

    def test_bad_matrix_spec_returns_error(self, capsys):
        assert main(["kernels", "--matrix", "nope:1"]) == 2

    def test_corpus(self, capsys):
        assert main(["corpus", "--limit", "3", "--kernel", "spmv",
                     "--stc", "ds-stc,uni-stc"]) == 0
        out = capsys.readouterr().out
        assert "Aver ExP" in out
        assert "vs ds-stc" in out

    def test_corpus_needs_two_stcs(self, capsys):
        assert main(["corpus", "--stc", "uni-stc"]) == 2


class TestDseCommand:
    SPEC = '{"config": {"num_dpgs": [4, 8]}, "matrices": ["rep:cant"], "kernels": ["spmv"]}'

    def _spec_file(self, tmp_path):
        path = tmp_path / "space.json"
        path.write_text(self.SPEC, encoding="utf-8")
        return str(path)

    def test_grid_campaign(self, capsys, tmp_path):
        assert main(["dse", "--space", self._spec_file(tmp_path),
                     "--matrix", "band:64:8:0.5"]) == 0
        out = capsys.readouterr().out
        assert "dse campaign [grid:0]" in out
        assert "2 candidate config(s)" in out
        assert "frontier:" in out
        assert "knee point:" in out

    def test_out_writes_frontier_json(self, capsys, tmp_path):
        out_path = tmp_path / "frontier.json"
        assert main(["dse", "--space", self._spec_file(tmp_path),
                     "--matrix", "band:64:8:0.5",
                     "--out", str(out_path)]) == 0
        import json

        blob = json.loads(out_path.read_text())
        assert blob["kind"] == "repro.dse.frontier"
        assert blob["benchmarks"]

    def test_plot_flag(self, capsys, tmp_path):
        assert main(["dse", "--space", self._spec_file(tmp_path),
                     "--matrix", "band:64:8:0.5", "--plot"]) == 0
        assert "cycles vs area" in capsys.readouterr().out

    def test_resume_replays_journal(self, capsys, tmp_path):
        journal = str(tmp_path / "dse.jsonl")
        spec = self._spec_file(tmp_path)
        base = ["dse", "--space", spec, "--matrix", "band:64:8:0.5",
                "--checkpoint", journal]
        assert main(base) == 0
        cold = capsys.readouterr().out
        assert "3 point(s) simulated, 0 replayed" in cold
        assert main(base + ["--resume"]) == 0
        warm = capsys.readouterr().out
        assert "0 point(s) simulated, 3 replayed" in warm

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["dse", "--resume"]) == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_random_strategy_needs_valid_name(self):
        with pytest.raises(SystemExit):
            main(["dse", "--strategy", "anneal"])

    def test_bad_space_file_is_an_error(self, capsys, tmp_path):
        bad = tmp_path / "space.json"
        bad.write_text("{not json", encoding="utf-8")
        assert main(["dse", "--space", str(bad)]) == 2
        assert "cannot read space spec" in capsys.readouterr().err

    def test_seeded_random_deterministic(self, capsys, tmp_path):
        args = ["dse", "--space", self._spec_file(tmp_path),
                "--matrix", "band:64:8:0.5",
                "--strategy", "random", "--seed", "0", "--budget", "2"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out
        assert first == second


class TestInfer:
    BASE = ["infer", "--model", "resnet50", "--scale", "0.05",
            "--stc", "uni-stc"]

    def test_prints_schedule_and_summary(self, capsys):
        assert main(self.BASE) == 0
        out = capsys.readouterr().out
        assert "resnet50 on uni-stc" in out
        assert "e2e latency:" in out and "DRAM" in out
        assert "spgemm" in out and "spmm" in out

    def test_out_writes_model_report(self, capsys, tmp_path):
        path = tmp_path / "model.json"
        assert main(self.BASE + ["--batch", "2", "--out", str(path)]) == 0
        import json

        doc = json.loads(path.read_text())
        assert doc["kind"] == "repro.model_report"
        assert doc["batch"] == 2
        assert doc["e2e_latency"] > 0
        assert len(doc["nodes"]) == 2 * 6     # 6 layers x 2 requests

    def test_multi_stc_writes_report_set(self, capsys, tmp_path):
        path = tmp_path / "set.json"
        assert main(["infer", "--model", "transformer", "--scale", "0.125",
                     "--stc", "uni-stc,ds-stc", "--out", str(path)]) == 0
        import json

        doc = json.loads(path.read_text())
        assert doc["kind"] == "repro.model_report_set"
        assert set(doc["reports"]) == {"uni-stc", "ds-stc"}

    def test_buffer_budget_flag_reaches_the_plan(self, capsys, tmp_path):
        path = tmp_path / "nobuf.json"
        assert main(self.BASE + ["--buffer-kib", "0",
                                 "--out", str(path)]) == 0
        import json

        doc = json.loads(path.read_text())
        assert doc["buffer"]["budget_bytes"] == 0
        assert doc["buffer"]["resident"] == []

    def test_unknown_stc_is_a_domain_error(self, capsys):
        assert main(["infer", "--stc", "tpu"]) == 2
        assert "error:" in capsys.readouterr().err

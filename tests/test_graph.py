"""Tests for the model-graph runtime (`repro.graph`)."""

import json

import pytest

from repro.arch.config import FP32, UniSTCConfig
from repro.arch.unistc import UniSTC
from repro.errors import GraphError, ShapeError
from repro.graph import (
    DEFAULT_BUFFER_KIB,
    GraphNode,
    GraphRunner,
    ModelGraph,
    TensorSpec,
    dnn_graph,
    plan_buffers,
)
from repro.sim.blockcache import BlockCache
from repro.sim.memory import kernel_traffic_bytes


@pytest.fixture(scope="module")
def uni32():
    return UniSTC(UniSTCConfig(precision=FP32))


@pytest.fixture(scope="module")
def resnet_graph():
    return dnn_graph("resnet50", 0.70, scale=0.05)


class TestTensorSpec:
    def test_dense_bytes(self):
        assert TensorSpec("t", 16, 32).nbytes() == 16 * 32 * 8
        assert TensorSpec("t", 16, 32).dense

    def test_sparse_bytes_value_plus_index(self):
        spec = TensorSpec("t", 64, 64, nnz=100)
        assert spec.nbytes() == 100 * 12
        assert not spec.dense

    def test_non_positive_shape_rejected(self):
        with pytest.raises(GraphError, match="non-positive shape"):
            TensorSpec("t", 0, 4)

    def test_nnz_bounds_checked(self):
        with pytest.raises(GraphError, match="outside"):
            TensorSpec("t", 4, 4, nnz=17)
        with pytest.raises(GraphError, match="outside"):
            TensorSpec("t", 4, 4, nnz=-1)


class TestModelGraph:
    def _chain(self):
        g = ModelGraph("chain")
        g.add_tensor(TensorSpec("x", 16, 16, kind="input"))
        g.add_tensor(TensorSpec("h", 16, 16))
        g.add_tensor(TensorSpec("y", 16, 16, kind="output"))
        g.add_node(GraphNode("n1", "spmm", a=None, inputs=("x",), output="h"))
        g.add_node(GraphNode("n2", "spmm", a=None, inputs=("h",), output="y"))
        return g

    def test_duplicate_tensor_rejected(self):
        g = ModelGraph("g")
        g.add_tensor(TensorSpec("x", 4, 4))
        with pytest.raises(GraphError, match="declared twice"):
            g.add_tensor(TensorSpec("x", 4, 4))

    def test_duplicate_node_rejected(self):
        g = self._chain()
        with pytest.raises(GraphError, match="declared twice"):
            g.add_node(GraphNode("n1", "spmv", a=None))

    def test_undeclared_input_rejected(self):
        g = ModelGraph("g")
        with pytest.raises(GraphError, match="undeclared"):
            g.add_node(GraphNode("n", "spmm", a=None, inputs=("ghost",)))

    def test_undeclared_output_rejected(self):
        g = ModelGraph("g")
        with pytest.raises(GraphError, match="undeclared"):
            g.add_node(GraphNode("n", "spmm", a=None, output="ghost"))

    def test_two_producers_rejected(self):
        g = self._chain()
        with pytest.raises(GraphError, match="two producers"):
            g.add_node(GraphNode("n3", "spmm", a=None, output="h"))

    def test_producer_consumer_maps(self):
        g = self._chain()
        assert g.producer("h") == "n1"
        assert g.producer("x") is None
        assert g.consumers("h") == ("n2",)
        assert g.external_inputs() == ["x"]
        assert g.terminal_outputs() == ["y"]
        assert g.edges() == [("n1", "n2", "h")]

    def test_schedule_is_deterministic_insertion_order(self):
        g = ModelGraph("fanout")
        g.add_tensor(TensorSpec("x", 4, 4, kind="input"))
        g.add_tensor(TensorSpec("a", 4, 4))
        g.add_tensor(TensorSpec("b", 4, 4))
        g.add_tensor(TensorSpec("c", 4, 4))
        g.add_node(GraphNode("root", "spmm", a=None, inputs=("x",),
                             output="a"))
        # Two independent consumers: ready together, emitted in
        # insertion order every time.
        g.add_node(GraphNode("right", "spmm", a=None, inputs=("a",),
                             output="c"))
        g.add_node(GraphNode("left", "spmm", a=None, inputs=("a",),
                             output="b"))
        assert [n.name for n in g.schedule()] == ["root", "right", "left"]

    def test_out_of_order_declaration_schedules(self):
        g = ModelGraph("reversed")
        g.add_tensor(TensorSpec("x", 4, 4, kind="input"))
        g.add_tensor(TensorSpec("h", 4, 4))
        g.add_node(GraphNode("late", "spmm", a=None, inputs=("h",)))
        g.add_node(GraphNode("early", "spmm", a=None, inputs=("x",),
                             output="h"))
        assert [n.name for n in g.schedule()] == ["early", "late"]

    def test_cycle_raises(self):
        g = ModelGraph("loop")
        g.add_tensor(TensorSpec("u", 4, 4))
        g.add_tensor(TensorSpec("v", 4, 4))
        g.add_node(GraphNode("n1", "spmm", a=None, inputs=("v",),
                             output="u"))
        g.add_node(GraphNode("n2", "spmm", a=None, inputs=("u",),
                             output="v"))
        with pytest.raises(GraphError, match="cycle"):
            g.schedule()
        with pytest.raises(GraphError, match="cycle"):
            g.validate()

    def test_node_lookup(self):
        g = self._chain()
        assert g.node("n1").kernel == "spmm"
        with pytest.raises(GraphError, match="no node"):
            g.node("nope")

    def test_request_operands_override(self):
        node = GraphNode("n", "spgemm", a=None,
                         operands={"matrix": "m", "b": "base"},
                         request_operands=lambda r: {"b": f"req{r}"})
        assert node.operand_kwargs(0) == {"matrix": "m", "b": "req0"}
        assert node.operand_kwargs(3) == {"matrix": "m", "b": "req3"}


class TestBufferPlan:
    def _chain(self, bytes_per_edge=1024):
        cols = bytes_per_edge // (16 * 8)
        g = ModelGraph("chain")
        g.add_tensor(TensorSpec("x", 16, cols, kind="input"))
        g.add_tensor(TensorSpec("h1", 16, cols))
        g.add_tensor(TensorSpec("h2", 16, cols))
        g.add_tensor(TensorSpec("y", 16, cols, kind="output"))
        g.add_node(GraphNode("n1", "spmm", a=None, inputs=("x",),
                             output="h1"))
        g.add_node(GraphNode("n2", "spmm", a=None, inputs=("h1",),
                             output="h2"))
        g.add_node(GraphNode("n3", "spmm", a=None, inputs=("h2",),
                             output="y"))
        return g

    def test_zero_budget_spills_everything(self):
        plan = plan_buffers(self._chain(), 0)
        assert plan.resident == ()
        assert set(plan.spilled) == {"h1", "h2"}
        assert plan.peak_bytes == 0

    def test_big_budget_keeps_everything(self):
        plan = plan_buffers(self._chain(1024), 1 << 20)
        assert set(plan.resident) == {"h1", "h2"}
        assert plan.spilled == ()
        assert plan.tensor_bytes["h1"] == 1024
        assert plan.is_resident("h1") and not plan.is_resident("x")

    def test_only_internal_edges_compete(self):
        plan = plan_buffers(self._chain(), 1 << 20)
        # x (external input) and y (terminal output) never compete.
        assert "x" not in plan.tensor_bytes
        assert "y" not in plan.tensor_bytes

    def test_greedy_admission_in_production_order(self):
        # Two edges of 1 KiB each; a 1.5 KiB budget admits only the
        # first-produced one at its overlap slot... but a simple chain
        # has disjoint liveness, so both fit.  Force overlap with a
        # skip connection h1 -> n3.
        g = ModelGraph("skip")
        g.add_tensor(TensorSpec("x", 16, 8, kind="input"))
        g.add_tensor(TensorSpec("h1", 16, 8))        # 1024 B, live n1..n3
        g.add_tensor(TensorSpec("h2", 16, 8))        # 1024 B, live n2..n3
        g.add_tensor(TensorSpec("y", 16, 8, kind="output"))
        g.add_node(GraphNode("n1", "spmm", a=None, inputs=("x",),
                             output="h1"))
        g.add_node(GraphNode("n2", "spmm", a=None, inputs=("h1",),
                             output="h2"))
        g.add_node(GraphNode("n3", "spmm", a=None, inputs=("h1", "h2"),
                             output="y"))
        plan = plan_buffers(g, 1536)
        assert plan.resident == ("h1",)     # first-produced wins
        assert plan.spilled == ("h2",)      # overlaps h1, over budget
        assert plan.peak_bytes == 1024
        both = plan_buffers(g, 2048)
        assert set(both.resident) == {"h1", "h2"}
        assert both.peak_bytes == 2048

    def test_peak_never_exceeds_budget(self, resnet_graph):
        for kib in (0, 1, 4, 16, 64, 256):
            plan = plan_buffers(resnet_graph, kib * 1024)
            assert plan.peak_bytes <= plan.budget_bytes

    def test_negative_budget_rejected(self):
        with pytest.raises(GraphError, match=">= 0"):
            plan_buffers(self._chain(), -1)

    def test_as_dict_round_trips_json(self):
        plan = plan_buffers(self._chain(), 4096)
        doc = json.loads(json.dumps(plan.as_dict()))
        assert doc["budget_bytes"] == 4096
        assert set(doc) == {"budget_bytes", "peak_bytes", "resident",
                            "spilled", "tensor_bytes"}


class TestTrafficResidency:
    def test_resident_components_zeroed(self, small_bbc):
        cold = kernel_traffic_bytes("spmm", small_bbc, b_cols=8)
        warm = kernel_traffic_bytes("spmm", small_bbc, b_cols=8,
                                    resident={"read_b", "write_c"})
        assert warm["read_b"] == 0.0 and warm["write_c"] == 0.0
        assert warm["read_a"] == cold["read_a"] > 0

    def test_weights_always_stream(self, small_bbc):
        with pytest.raises(ShapeError, match="always streams"):
            kernel_traffic_bytes("spmm", small_bbc, b_cols=8,
                                 resident={"read_a"})

    def test_unknown_component_rejected(self, small_bbc):
        with pytest.raises(ShapeError):
            kernel_traffic_bytes("spmm", small_bbc, b_cols=8,
                                 resident={"read_z"})


class TestGraphRunner:
    def test_batch_must_be_positive(self, resnet_graph, uni32):
        with pytest.raises(GraphError, match="batch"):
            GraphRunner(resnet_graph, uni32, batch=0).run()

    def test_single_request_run(self, resnet_graph, uni32):
        report = GraphRunner(resnet_graph, uni32,
                             cache=BlockCache()).run()
        assert len(report.nodes) == len(resnet_graph)
        assert report.e2e_compute_cycles > 0
        assert isinstance(report.e2e_compute_cycles, int)
        assert report.e2e_latency >= report.e2e_compute_cycles > 0
        assert report.e2e_energy_pj > 0
        assert report.dram_traffic_bytes > 0
        # latency model: per-node max(compute, memory)
        for node in report.nodes:
            assert node.latency_cycles == max(node.compute_cycles,
                                              node.memory_cycles)

    def test_batch_replays_schedule_per_request(self, resnet_graph, uni32):
        report = GraphRunner(resnet_graph, uni32, batch=3,
                             cache=BlockCache()).run()
        assert len(report.nodes) == 3 * len(resnet_graph)
        assert {n.request for n in report.nodes} == {0, 1, 2}
        assert len(report.per_layer(request=2)) == len(resnet_graph)

    def test_batching_amortises_weight_blocks(self, resnet_graph, uni32):
        single = GraphRunner(resnet_graph, uni32, batch=1,
                             cache=BlockCache()).run()
        batched = GraphRunner(resnet_graph, uni32, batch=4,
                              cache=BlockCache()).run()
        # Requests 1+ re-hit every request-invariant weight block.
        assert batched.cache_hit_rate > single.cache_hit_rate

    def test_request_offset_matches_batched_request(self, uni32):
        from repro.perf.bench import report_digest

        graph = dnn_graph("resnet50", 0.70, scale=0.05)
        batched = GraphRunner(graph, uni32, batch=2,
                              cache=BlockCache()).run()
        alone = GraphRunner(dnn_graph("resnet50", 0.70, scale=0.05),
                            uni32, batch=1, request_offset=1,
                            cache=BlockCache()).run()
        want = [report_digest(n.report) for n in batched.per_layer(1)]
        got = [report_digest(n.report) for n in alone.nodes]
        assert got == want
        assert {n.request for n in alone.nodes} == {1}

    def test_buffer_budget_trades_dram_traffic(self, uni32):
        graph = dnn_graph("resnet50", 0.70, scale=0.05)
        spill = GraphRunner(graph, uni32, buffer_bytes=0,
                            cache=BlockCache()).run()
        keep = GraphRunner(graph, uni32, buffer_bytes=1 << 24,
                           cache=BlockCache()).run()
        assert keep.dram_traffic_bytes < spill.dram_traffic_bytes
        assert keep.e2e_energy_pj < spill.e2e_energy_pj
        # Residency is a traffic overlay: kernel reports are untouched.
        assert [n.compute_cycles for n in keep.nodes] \
            == [n.compute_cycles for n in spill.nodes]

    def test_as_json_schema(self, resnet_graph, uni32):
        report = GraphRunner(resnet_graph, uni32,
                             cache=BlockCache()).run()
        doc = json.loads(json.dumps(report.as_json()))
        assert doc["kind"] == "repro.model_report"
        assert doc["model"] == "resnet50"
        assert doc["e2e_compute_cycles"] == report.e2e_compute_cycles
        assert len(doc["nodes"]) == len(report.nodes)
        assert doc["buffer"]["budget_bytes"] == DEFAULT_BUFFER_KIB * 1024
        assert doc["nodes"][0]["latency_cycles"] \
            == max(doc["nodes"][0]["cycles"],
                   doc["nodes"][0]["memory_cycles"])

    def test_objectives_vector(self, resnet_graph, uni32):
        report = GraphRunner(resnet_graph, uni32,
                             cache=BlockCache()).run()
        obj = report.objectives()
        assert set(obj) == {"e2e_latency", "e2e_energy"}
        assert set(report.objectives(area_mm2=1.5)) \
            == {"e2e_latency", "e2e_energy", "area_mm2"}

    def test_write_json(self, resnet_graph, uni32, tmp_path):
        report = GraphRunner(resnet_graph, uni32,
                             cache=BlockCache()).run()
        path = tmp_path / "model.json"
        report.write_json(path)
        assert json.loads(path.read_text())["kind"] == "repro.model_report"

"""Tests for the CSR container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FormatError, ShapeError
from repro.formats import COOMatrix, CSRMatrix


class TestConstruction:
    def test_empty(self):
        m = CSRMatrix.empty((3, 5))
        assert m.nnz == 0
        assert m.to_dense().shape == (3, 5)

    def test_identity(self):
        m = CSRMatrix.identity(4)
        assert np.array_equal(m.to_dense(), np.eye(4))

    def test_from_diagonal(self):
        m = CSRMatrix.from_diagonal([1.0, 2.0, 3.0])
        assert np.array_equal(m.to_dense(), np.diag([1.0, 2.0, 3.0]))

    def test_bad_indptr_length(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [1, 1, 1], [], [])

    def test_indptr_must_end_at_nnz(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1, 3], [0, 1], [1.0, 2.0])

    def test_decreasing_indptr(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 2.0])

    def test_column_out_of_bounds(self):
        with pytest.raises(FormatError):
            CSRMatrix((2, 2), [0, 1, 1], [5], [1.0])

    def test_unsorted_row_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 4), [0, 2], [2, 1], [1.0, 2.0])

    def test_duplicate_in_row_rejected(self):
        with pytest.raises(FormatError):
            CSRMatrix((1, 4), [0, 2], [1, 1], [1.0, 2.0])


class TestConversions:
    def test_from_coo_roundtrip(self, small_coo):
        assert CSRMatrix.from_coo(small_coo).to_coo() == small_coo

    def test_from_dense(self, small_dense):
        assert np.allclose(CSRMatrix.from_dense(small_dense).to_dense(), small_dense)

    @given(st.integers(1, 16), st.integers(1, 16), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_coo_csr_coo_identity(self, m, n, seed):
        rng = np.random.default_rng(seed)
        dense = rng.random((m, n)) * (rng.random((m, n)) < 0.4)
        coo = COOMatrix.from_dense(dense)
        assert CSRMatrix.from_coo(coo).to_coo() == coo


class TestAccessors:
    def test_row(self):
        m = CSRMatrix.from_dense(np.array([[0.0, 5.0, 0.0], [1.0, 0.0, 2.0]]))
        cols, vals = m.row(1)
        assert cols.tolist() == [0, 2]
        assert vals.tolist() == [1.0, 2.0]

    def test_row_out_of_bounds(self, small_csr):
        with pytest.raises(ShapeError):
            small_csr.row(small_csr.shape[0])

    def test_row_nnz(self):
        m = CSRMatrix.from_dense(np.array([[1.0, 1.0], [0.0, 0.0], [1.0, 0.0]]))
        assert m.row_nnz().tolist() == [2, 0, 1]

    def test_diagonal(self):
        dense = np.array([[1.0, 2.0], [0.0, 0.0]])
        assert CSRMatrix.from_dense(dense).diagonal().tolist() == [1.0, 0.0]

    def test_diagonal_rectangular(self):
        dense = np.array([[3.0, 0.0, 1.0]])
        assert CSRMatrix.from_dense(dense).diagonal().tolist() == [3.0]


class TestOps:
    def test_transpose(self, small_csr, small_dense):
        assert np.allclose(small_csr.transpose().to_dense(), small_dense.T)

    def test_scaled(self, small_csr):
        assert np.allclose(small_csr.scaled(-1.5).to_dense(), -1.5 * small_csr.to_dense())

    def test_with_data(self, small_csr):
        doubled = small_csr.with_data(small_csr.data * 2)
        assert np.allclose(doubled.to_dense(), 2 * small_csr.to_dense())

    def test_with_data_wrong_length(self, small_csr):
        with pytest.raises(FormatError):
            small_csr.with_data(np.ones(small_csr.nnz + 1))

    def test_prune(self):
        m = CSRMatrix.from_dense(np.array([[1e-12, 1.0], [0.5, 1e-9]]))
        pruned = m.prune(1e-6)
        assert pruned.nnz == 2

    def test_prune_keeps_shape(self, small_csr):
        assert small_csr.prune(0.0).shape == small_csr.shape

    def test_equality(self, small_csr, small_coo):
        assert small_csr == CSRMatrix.from_coo(small_coo)

    def test_not_hashable(self, small_csr):
        with pytest.raises(TypeError):
            hash(small_csr)


class TestStorage:
    def test_storage_bytes_exact(self):
        m = CSRMatrix.from_dense(np.eye(4))
        # indptr 5 + indices 4 at 4 bytes, 4 values at 8 bytes.
        assert m.storage_bytes() == (5 + 4) * 4 + 4 * 8

    def test_metadata_excludes_values(self, small_csr):
        assert small_csr.metadata_bytes() == small_csr.storage_bytes() - 8 * small_csr.nnz

    def test_metadata_grows_with_nnz(self):
        small = CSRMatrix.from_dense(np.eye(8))
        large = CSRMatrix.from_dense(np.ones((8, 8)))
        assert large.metadata_bytes() > small.metadata_bytes()

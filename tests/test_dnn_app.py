"""Tests for the sparse DNN inference application."""

import numpy as np
import pytest

from repro.apps.dnn import compare_models, forward_layer, simulate_inference
from repro.arch.config import FP32
from repro.arch.unistc import UniSTC
from repro.arch.config import UniSTCConfig
from repro.baselines import DsSTC, RmSTC
from repro.errors import ShapeError
from repro.formats import BBCMatrix
from repro.workloads.dlmc import pruned_weight
from repro.workloads.dnn import transformer_layers


class TestSimulateInference:
    @pytest.fixture(scope="class")
    def uni32(self):
        return UniSTC(UniSTCConfig(precision=FP32))

    def test_transformer_layers_covered(self, uni32):
        report = simulate_inference(uni32, "transformer", 0.70, scale=0.125)
        assert len(report.layers) == len(transformer_layers(0.125))
        assert report.total_cycles > 0
        assert report.total_energy_pj > 0

    def test_higher_sparsity_fewer_cycles(self, uni32):
        dense_ish = simulate_inference(uni32, "transformer", 0.70, scale=0.125)
        sparse = simulate_inference(uni32, "transformer", 0.98, scale=0.125)
        assert sparse.total_cycles < dense_ish.total_cycles

    def test_resnet_uses_spgemm_for_conv(self, uni32):
        report = simulate_inference(uni32, "resnet50", 0.70, scale=0.05)
        kernels = {l.report.kernel for l in report.layers}
        assert "spgemm" in kernels      # conv layers
        assert "spmm" in kernels        # the fc layer

    def test_compare_models_keys(self):
        cfg = UniSTCConfig(precision=FP32)
        reports = compare_models([UniSTC(cfg), DsSTC(FP32)], "transformer", 0.98, scale=0.125)
        assert set(reports) == {"uni-stc", "ds-stc"}

    def test_compare_models_threads_the_seed(self):
        # The seed used to be silently pinned to 11, so comparisons
        # could never vary their inputs.
        cfg = UniSTCConfig(precision=FP32)
        default = compare_models([UniSTC(cfg)], "transformer", 0.70, scale=0.125)
        pinned = compare_models([UniSTC(cfg)], "transformer", 0.70, scale=0.125, seed=11)
        varied = compare_models([UniSTC(cfg)], "transformer", 0.70, scale=0.125, seed=99)
        assert default["uni-stc"].total_cycles == pinned["uni-stc"].total_cycles
        assert varied["uni-stc"].total_cycles != pinned["uni-stc"].total_cycles

    def test_total_cycles_aggregates_in_integer_domain(self):
        # A corpus-scale total must not round through float64: two
        # layers at 2^62 cycles each sum exactly, and the result is a
        # Python int even when per-layer cycles arrive as np.int64.
        from repro.apps.dnn import InferenceReport, LayerReport
        from repro.sim.results import SimReport
        from repro.workloads.dnn import LayerSpec

        layer = LayerSpec("huge", 16, 16, 16, "linear")
        big = np.int64(2 ** 62)
        report = InferenceReport(model="m", stc="uni-stc", sparsity=0.5)
        for i in range(2):
            report.layers.append(LayerReport(
                layer=layer, report=SimReport("uni-stc", "spmm", cycles=big)))
        assert report.total_cycles == 2 ** 63
        assert isinstance(report.total_cycles, int)
        assert not isinstance(report.total_cycles, np.integer)

    def test_uni_beats_baselines_on_sparse_weights(self):
        cfg = UniSTCConfig(precision=FP32)
        reports = compare_models(
            [UniSTC(cfg), DsSTC(FP32), RmSTC(FP32)], "transformer", 0.98, scale=0.125
        )
        assert reports["uni-stc"].total_cycles <= reports["rm-stc"].total_cycles
        assert reports["uni-stc"].total_cycles < reports["ds-stc"].total_cycles


class TestForwardLayer:
    def test_matches_dense(self, rng):
        weight = pruned_weight(32, 48, 0.8, seed=0)
        bbc = BBCMatrix.from_coo(weight)
        acts = rng.standard_normal((48, 8))
        expected = np.maximum(weight.to_dense() @ acts, 0.0)
        assert np.allclose(forward_layer(bbc, acts), expected)

    def test_no_relu(self, rng):
        weight = pruned_weight(16, 16, 0.5, seed=1)
        bbc = BBCMatrix.from_coo(weight)
        acts = rng.standard_normal((16, 4))
        assert np.allclose(forward_layer(bbc, acts, relu=False), weight.to_dense() @ acts)

    def test_shape_checked(self):
        bbc = BBCMatrix.from_coo(pruned_weight(16, 16, 0.5, seed=2))
        with pytest.raises(ShapeError):
            forward_layer(bbc, np.ones((8, 4)))

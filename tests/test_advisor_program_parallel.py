"""Tests for the format advisor, UWMMA programs and multi-core scaling."""

import numpy as np
import pytest

from repro.arch.program import compile_kernel, iter_numeric_cycles, validate_program
from repro.arch.unistc import UniSTC
from repro.errors import SimulationError
from repro.formats import BBCMatrix, COOMatrix
from repro.formats.advisor import CANDIDATES, analyse, recommend
from repro.kernels.vector import SparseVector
from repro.sim.engine import simulate_kernel
from repro.sim.parallel import (
    block_row_work,
    partition_block_rows,
    simulate_parallel,
)
from repro.workloads.synthetic import banded, long_rows, random_uniform


class TestAdvisor:
    def test_dense_blocks_pick_bbc(self):
        """Nearly-dense blocks: BBC wins (BSR pays 8 B per padding zero)."""
        rng = np.random.default_rng(3)
        dense = (rng.random((64, 64)) < 0.85) * 1.0
        report = analyse(COOMatrix.from_dense(dense))
        assert report.recommendation == "bbc"
        assert report.reduction_vs_csr("bbc") > 5.0

    def test_permutation_picks_csr(self):
        rng = np.random.default_rng(0)
        perm = rng.permutation(256)
        coo = COOMatrix((256, 256), np.arange(256), perm, np.ones(256))
        assert recommend(coo) == "csr"

    def test_all_candidates_measured(self, small_coo):
        report = analyse(small_coo)
        assert set(report.metadata_bytes) == set(CANDIDATES)
        assert all(v > 0 for v in report.metadata_bytes.values())

    def test_nnz_per_block_statistic(self):
        coo = COOMatrix.from_dense(np.ones((16, 16)))
        assert analyse(coo).nnz_per_block == 256.0


class TestUWMMAProgram:
    @pytest.fixture(scope="class")
    def bbc(self):
        return BBCMatrix.from_coo(banded(96, 10, 0.5, seed=2))

    def test_program_structure(self, bbc):
        result = compile_kernel("spmv", bbc)
        validate_program(result)
        assert result.t1_tasks == bbc.nblocks
        assert len(result.instructions) == 4 * result.t1_tasks

    def test_numeric_cycles_match_simulator(self, bbc):
        """Numeric instructions carry the per-block exec cycles (clamped
        to the Table V ceiling)."""
        uni = UniSTC()
        result = compile_kernel("spgemm", bbc, uni)
        report = simulate_kernel("spgemm", bbc, uni)
        assert sum(iter_numeric_cycles(result)) <= report.cycles + 64 * result.t1_tasks
        assert result.numeric_cycles >= result.t1_tasks  # >= 1 each

    def test_task_gen_is_asynchronous(self, bbc):
        result = compile_kernel("spmv", bbc)
        gen = [i for i in result.instructions if i.opcode.startswith("stc.task_gen")]
        assert gen and all(i.asynchronous for i in gen)
        assert all(i.sm_cycles == 1 for i in gen)

    def test_overlap_hides_generation(self, bbc):
        """Steady-state: stalls stay far below total generation time."""
        result = compile_kernel("spgemm", bbc)
        total_gen = sum(
            i.cycles for i in result.instructions if i.opcode.startswith("stc.task_gen")
        )
        assert result.stall_cycles < total_gen
        assert result.overlap_efficiency > 0.5

    def test_first_block_pays_pipeline_fill(self, bbc):
        result = compile_kernel("spmv", bbc)
        numerics = [i for i in result.instructions if i.opcode.startswith("stc.numeric")]
        assert numerics[0].stall_cycles == 2  # PIPELINE_STAGES - 1

    def test_sm_cycles_exceed_numeric(self, bbc):
        result = compile_kernel("spmv", bbc)
        assert result.sm_cycles > result.numeric_cycles

    def test_spmspv_program(self, bbc):
        x = SparseVector(bbc.shape[1], [0, 40], [1.0, 1.0])
        result = compile_kernel("spmspv", bbc, x=x)
        validate_program(result)
        assert result.t1_tasks >= 1

    def test_validate_rejects_malformed(self):
        from repro.arch.program import ExecutedInstruction, ProgramResult

        bad = ProgramResult(kernel="spmv", t1_tasks=1)
        bad.instructions = [ExecutedInstruction("stc.numeric.mv", 1, False)]
        with pytest.raises(SimulationError):
            validate_program(bad)


class TestLoadBalancing:
    @pytest.fixture(scope="class")
    def bbc(self):
        return BBCMatrix.from_coo(long_rows(192, heavy_rows=3, seed=5))

    def test_work_positive_on_live_rows(self, bbc):
        work = block_row_work(bbc, "spmv")
        assert work.sum() == bbc.nnz  # spmv work = nonzeros

    def test_spgemm_work_counts_block_pairs(self, bbc):
        from repro.kernels.taskstream import spgemm_tasks

        work = block_row_work(bbc, "spgemm")
        assert work.sum() == len(list(spgemm_tasks(bbc, bbc)))

    def test_partition_covers_everything(self):
        work = np.array([5, 1, 9, 2, 2, 7, 1, 3])
        parts = partition_block_rows(work, 3)
        covered = [i for p in parts for i in p]
        assert covered == list(range(8))

    def test_partition_balances(self):
        work = np.ones(100, dtype=np.int64)
        parts = partition_block_rows(work, 4)
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_partition_rejects_zero_parts(self):
        with pytest.raises(SimulationError):
            partition_block_rows(np.ones(4, dtype=np.int64), 0)

    def test_single_part_is_whole_range(self):
        parts = partition_block_rows(np.arange(6), 1)
        assert parts == [range(0, 6)]


class TestSimulateParallel:
    @pytest.fixture(scope="class")
    def bbc(self):
        return BBCMatrix.from_coo(banded(160, 14, 0.4, seed=9))

    def test_work_conserved(self, bbc):
        serial = simulate_kernel("spmv", bbc, UniSTC())
        par = simulate_parallel("spmv", bbc, UniSTC, n_cores=4)
        assert par.total_cycles == serial.cycles
        assert sum(r.products for r in par.per_core) == serial.products

    def test_wall_clock_speedup(self, bbc):
        serial = simulate_kernel("spgemm", bbc, UniSTC())
        par = simulate_parallel("spgemm", bbc, UniSTC, n_cores=4)
        assert par.wall_cycles < serial.cycles
        assert 1.0 < par.speedup_vs_single() <= 4.0

    def test_energy_is_aggregate(self, bbc):
        serial = simulate_kernel("spmv", bbc, UniSTC())
        par = simulate_parallel("spmv", bbc, UniSTC, n_cores=4)
        assert par.total_energy_pj == pytest.approx(serial.energy_pj, rel=1e-9)

    def test_load_imbalance_at_least_one(self, bbc):
        par = simulate_parallel("spmv", bbc, UniSTC, n_cores=4)
        assert par.load_imbalance >= 1.0

    def test_spmm_weighted_tasks(self, bbc):
        serial = simulate_kernel("spmm", bbc, UniSTC(), b_cols=64)
        par = simulate_parallel("spmm", bbc, UniSTC, n_cores=2, b_cols=64)
        assert par.total_cycles == serial.cycles

    def test_spmspv_requires_x(self, bbc):
        with pytest.raises(SimulationError):
            simulate_parallel("spmspv", bbc, UniSTC, n_cores=2)

    def test_spmspv_matches_serial(self, bbc):
        x = SparseVector(bbc.shape[1], [0, 32, 64], np.ones(3))
        serial = simulate_kernel("spmspv", bbc, UniSTC(), x=x)
        par = simulate_parallel("spmspv", bbc, UniSTC, n_cores=3, x=x)
        assert par.total_cycles == serial.cycles

    def test_unknown_kernel_rejected(self, bbc):
        with pytest.raises(SimulationError):
            simulate_parallel("gemm", bbc, UniSTC)

    def test_imbalanced_matrix_shows_imbalance(self):
        arrow = BBCMatrix.from_coo(long_rows(192, heavy_rows=2, heavy_density=0.9,
                                             background_density=0.002, seed=1))
        par = simulate_parallel("spgemm", arrow, UniSTC, n_cores=4)
        uniform = BBCMatrix.from_coo(random_uniform(192, 192, 0.05, seed=1))
        par_uniform = simulate_parallel("spgemm", uniform, UniSTC, n_cores=4)
        assert par.load_imbalance >= par_uniform.load_imbalance * 0.9

"""Tests for shard specs and case chunking (repro.exec.shard)."""

from __future__ import annotations

import pytest

from repro.dse.space import DesignPoint
from repro.errors import ConfigError, ReproError
from repro.exec import SHARD_SCHEMA, ShardSpec, StcDef, shard_cases
from repro.sim.sweep import Sweep, SweepCase


def make_spec(tmp_path, **overrides):
    fields = dict(
        shard_id="s0",
        campaign="abc123",
        matrices=(("m0", "band:64:6:0.5"), ("m1", "band:64:8:0.5")),
        stcs=(StcDef.plain("uni-stc"), StcDef.plain("ds-stc")),
        kernels=("spmv",),
        cases=(("m0", "uni-stc", "spmv"), ("m1", "ds-stc", "spmv")),
        journal=str(tmp_path / "s0.journal"),
    )
    fields.update(overrides)
    return ShardSpec(**fields)


class TestStcDef:
    def test_plain_rejects_unknown_names(self):
        with pytest.raises(ReproError):
            StcDef.plain("banana-stc")

    def test_plain_factory_builds_registry_model(self):
        model = StcDef.plain("uni-stc").factory()()
        assert model.name == "uni-stc"

    def test_knobbed_factory_matches_design_point_config(self):
        knobs = {"tile": 4, "num_dpgs": 8}
        stc = StcDef.from_knobs("uni-stc[num_dpgs=8,tile=4]", knobs)
        model = stc.factory()()
        reference = DesignPoint(matrix="", kernel="",
                                knobs=tuple(sorted(knobs.items()))).config()
        assert model.config.num_dpgs == reference.num_dpgs
        assert model.config.tile == reference.tile

    def test_json_round_trip(self):
        for stc in (StcDef.plain("ds-stc"),
                    StcDef.from_knobs("uni-stc[tile=8]", {"tile": 8})):
            assert StcDef.from_json(stc.as_json()) == stc


class TestShardSpec:
    def test_round_trip_preserves_everything(self, tmp_path):
        spec = make_spec(tmp_path, seed=7, timeout_s=2.5, max_retries=3,
                         heartbeat=str(tmp_path / "hb"),
                         metrics=str(tmp_path / "m.json"))
        again = ShardSpec.from_json(spec.as_json())
        assert again == spec

    def test_write_read(self, tmp_path):
        spec = make_spec(tmp_path)
        path = spec.write(tmp_path / "s0.spec.json")
        assert ShardSpec.read(path) == spec

    def test_schema_mismatch_rejected(self, tmp_path):
        data = make_spec(tmp_path).as_json()
        data["schema"] = SHARD_SCHEMA + 1
        with pytest.raises(ConfigError, match="schema mismatch"):
            ShardSpec.from_json(data)

    def test_wrong_kind_rejected(self):
        with pytest.raises(ConfigError, match="not a repro.exec shard"):
            ShardSpec.from_json({"kind": "something-else"})

    def test_case_referencing_missing_matrix_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no matrix-spec entry"):
            make_spec(tmp_path, cases=(("ghost", "uni-stc", "spmv"),))

    def test_case_referencing_missing_stc_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no STC definition"):
            make_spec(tmp_path, cases=(("m0", "rm-stc", "spmv"),))

    def test_empty_cases_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="no cases"):
            make_spec(tmp_path, cases=())

    def test_missing_journal_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="journal"):
            make_spec(tmp_path, journal="")

    def test_build_sweep_reproduces_direct_results(self, tmp_path):
        """A shard rebuilt from its spec simulates the same numbers."""
        from repro.registry import parse_matrix_spec

        spec = make_spec(tmp_path)
        sweep = spec.build_sweep()
        results = {(r.case.matrix_name, r.case.stc_name): r.report.cycles
                   for c in sweep.cases() for r in [sweep.run_case(c)]}
        direct = Sweep.from_names(
            {"m0": parse_matrix_spec("band:64:6:0.5"),
             "m1": parse_matrix_spec("band:64:8:0.5")},
            ["uni-stc", "ds-stc"], ["spmv"],
        )
        for case in direct.cases():
            key = (case.matrix_name, case.stc_name)
            if key in results:
                assert direct.run_case(case).report.cycles == results[key]

    def test_replace_cases_narrows_the_workload(self, tmp_path):
        spec = make_spec(tmp_path)
        child = spec.replace_cases(
            [SweepCase("m0", "uni-stc", "spmv")], shard_id="s0a",
            journal=str(tmp_path / "s0a.journal"), heartbeat="", metrics="")
        assert child.shard_id == "s0a"
        assert child.cases == (("m0", "uni-stc", "spmv"),)
        assert dict(child.matrices) == {"m0": "band:64:6:0.5"}
        assert [d.name for d in child.stcs] == ["uni-stc"]
        assert child.campaign == spec.campaign


class TestShardCases:
    def cases(self, n):
        return [SweepCase(f"m{i}", "uni-stc", "spmv") for i in range(n)]

    def test_contiguous_and_balanced(self):
        shards = shard_cases(self.cases(10), 3)
        assert [len(s) for s in shards] == [4, 3, 3]
        flat = [c for shard in shards for c in shard]
        assert flat == self.cases(10)  # order preserved, nothing lost

    def test_never_produces_empty_shards(self):
        shards = shard_cases(self.cases(2), 5)
        assert [len(s) for s in shards] == [1, 1]

    def test_single_shard_is_identity(self):
        assert shard_cases(self.cases(4), 1) == [self.cases(4)]

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigError):
            shard_cases(self.cases(4), 0)

"""Task-stream generation: the streams must account for every product."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.formats import BBCMatrix
from repro.kernels import taskstream as ts
from repro.kernels.vector import SparseVector


def _total_products(tasks):
    return sum(t.intermediate_products() * t.weight for t in tasks)


def _expected_products(a_dense, b_dense):
    return int(((a_dense != 0).sum(axis=0) * (b_dense != 0).sum(axis=1)).sum())


class TestSpMVTasks:
    def test_products_match(self, rng):
        dense = rng.random((50, 40)) * (rng.random((50, 40)) < 0.2)
        bbc = BBCMatrix.from_dense(dense)
        x = np.ones((40, 1))
        tasks = list(ts.spmv_tasks(bbc))
        assert _total_products(tasks) == _expected_products(dense, x)

    def test_task_count_is_block_count(self, small_bbc):
        assert len(list(ts.spmv_tasks(small_bbc))) == small_bbc.nblocks

    def test_vector_operand_shape(self, small_bbc):
        for task in ts.spmv_tasks(small_bbc):
            assert task.n == 1
            assert task.b_bitmap().shape == (16, 1)

    def test_padding_masked(self):
        """Columns past the true width must not contribute products."""
        dense = np.zeros((16, 20))
        dense[0, 19] = 1.0
        bbc = BBCMatrix.from_dense(dense)
        tasks = list(ts.spmv_tasks(bbc))
        assert _total_products(tasks) == 1


class TestSpMSpVTasks:
    def test_dead_segments_skipped(self, rng):
        dense = rng.random((64, 64)) * (rng.random((64, 64)) < 0.3)
        bbc = BBCMatrix.from_dense(dense)
        x = SparseVector(64, [0], [1.0])  # only segment 0 live
        tasks = list(ts.spmspv_tasks(bbc, x))
        live_blocks = sum(1 for _, bcol, _ in bbc.iter_blocks() if bcol == 0)
        assert len(tasks) == live_blocks

    def test_products_match(self, rng):
        dense = rng.random((48, 48)) * (rng.random((48, 48)) < 0.25)
        bbc = BBCMatrix.from_dense(dense)
        xs = rng.random(48) * (rng.random(48) < 0.5)
        x = SparseVector.from_dense(xs)
        expected = _expected_products(dense, (xs != 0)[:, None])
        assert _total_products(list(ts.spmspv_tasks(bbc, x))) == expected

    def test_length_mismatch(self, small_bbc):
        with pytest.raises(ShapeError):
            list(ts.spmspv_tasks(small_bbc, SparseVector(3, [], [])))


class TestSpMMTasks:
    def test_weight_collapses_panels(self, small_bbc):
        tasks = list(ts.spmm_tasks(small_bbc, b_cols=64))
        assert all(t.weight == 4 for t in tasks)
        assert len(tasks) == small_bbc.nblocks

    def test_tail_panel(self, small_bbc):
        tasks = list(ts.spmm_tasks(small_bbc, b_cols=40))
        weights = sorted({t.weight for t in tasks})
        assert weights == [1, 2]  # 2 full panels + one 8-wide tail

    def test_products_match(self, rng):
        dense = rng.random((32, 32)) * (rng.random((32, 32)) < 0.3)
        bbc = BBCMatrix.from_dense(dense)
        b = np.ones((32, 64))
        expected = _expected_products(dense, b)
        assert _total_products(list(ts.spmm_tasks(bbc, 64))) == expected

    def test_rejects_zero_columns(self, small_bbc):
        with pytest.raises(ShapeError):
            list(ts.spmm_tasks(small_bbc, b_cols=0))


class TestSpGEMMTasks:
    def test_products_match(self, rng):
        da = rng.random((48, 48)) * (rng.random((48, 48)) < 0.15)
        db = rng.random((48, 48)) * (rng.random((48, 48)) < 0.15)
        a, b = BBCMatrix.from_dense(da), BBCMatrix.from_dense(db)
        assert _total_products(list(ts.spgemm_tasks(a, b))) == _expected_products(da, db)

    def test_task_count_is_block_pair_count(self, rng):
        da = rng.random((64, 64)) * (rng.random((64, 64)) < 0.1)
        a = BBCMatrix.from_dense(da)
        expected = 0
        for brow in range(a.block_rows):
            cols, _ = a.block_row(brow)
            for c in cols:
                expected += a.block_row(int(c))[0].size
        assert len(list(ts.spgemm_tasks(a, a))) == expected

    def test_inner_mismatch(self, rng):
        a = BBCMatrix.from_dense(rng.random((16, 32)))
        with pytest.raises(ShapeError):
            list(ts.spgemm_tasks(a, a))


class TestDispatch:
    def test_kernel_tasks_dispatch(self, small_bbc):
        assert list(ts.kernel_tasks("spmv", small_bbc))
        assert list(ts.kernel_tasks("SPMM", small_bbc, b_cols=16))
        assert list(ts.kernel_tasks("spgemm", small_bbc,
                                    b=BBCMatrix.from_dense(np.eye(small_bbc.shape[1]))))

    def test_spgemm_defaults_to_a_squared(self, rng):
        dense = rng.random((32, 32)) * (rng.random((32, 32)) < 0.2)
        a = BBCMatrix.from_dense(dense)
        assert (_total_products(list(ts.kernel_tasks("spgemm", a)))
                == _expected_products(dense, dense))

    def test_spmspv_requires_x(self, small_bbc):
        with pytest.raises(ShapeError):
            ts.kernel_tasks("spmspv", small_bbc)

    def test_unknown_kernel(self, small_bbc):
        with pytest.raises(ShapeError):
            ts.kernel_tasks("gemm", small_bbc)

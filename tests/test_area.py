"""Tests for the area model, Table IX and the EED metric."""

import pytest

from repro.arch.config import UniSTCConfig
from repro.energy.area import (
    A100_DIE_MM2,
    DS_STC_AREA_MM2,
    RM_STC_AREA_MM2,
    UNITS_PER_GPU,
    area_breakdown,
    die_percentage,
    eed,
    sram_area_mm2,
    stc_area_mm2,
    total_area_mm2,
)
from repro.errors import ConfigError


class TestSRAM:
    def test_monotone_in_capacity(self):
        assert sram_area_mm2(2048) > sram_area_mm2(1024) > sram_area_mm2(144)

    def test_calibration_meta_buffer(self):
        """Table IX: the 144 B meta buffer is ~0.0005 mm²."""
        assert sram_area_mm2(144) == pytest.approx(0.0005, rel=0.5)

    def test_calibration_accumulator(self):
        assert sram_area_mm2(1024) == pytest.approx(0.003, rel=0.35)

    def test_calibration_matrix_a(self):
        assert sram_area_mm2(2048) == pytest.approx(0.007, rel=0.25)

    def test_node_scaling_quadratic(self):
        assert sram_area_mm2(1024, node_nm=14.0) == pytest.approx(
            4 * sram_area_mm2(1024, node_nm=7.0)
        )

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            sram_area_mm2(-1)


class TestTableIX:
    def test_breakdown_has_all_rows(self):
        rows = area_breakdown()
        assert len(rows) == 6
        assert "TMS & DPG" in rows
        assert "Extra adders in SDPU" in rows

    def test_total_near_paper(self):
        """Paper: 0.0425 mm² per unit."""
        assert total_area_mm2() == pytest.approx(0.0425, rel=0.15)

    def test_die_percentage_near_paper(self):
        """Paper: 432 units occupy ~2.12% of the 826 mm² A100 die."""
        assert die_percentage() == pytest.approx(2.12, rel=0.2)

    def test_deployment_constants(self):
        assert UNITS_PER_GPU == 4 * 108
        assert A100_DIE_MM2 == 826.0

    def test_dpg_count_scales_area(self):
        a4 = total_area_mm2(UniSTCConfig(num_dpgs=4, tile_queue_depth=8))
        a8 = total_area_mm2()
        a16 = total_area_mm2(UniSTCConfig(num_dpgs=16))
        assert a4 < a8 < a16

    def test_uni_overhead_vs_rm_near_paper(self):
        """Paper: Uni-STC's dedicated modules are ~18% larger than RM-STC's."""
        ratio = total_area_mm2() / RM_STC_AREA_MM2
        assert ratio == pytest.approx(1.18, rel=0.1)


class TestEED:
    def test_baseline_is_unity(self):
        assert eed(1.0, 1.0, "ds-stc") == pytest.approx(1.0)

    def test_area_penalises(self):
        # Same speedup/energy, bigger area -> lower EED.
        assert eed(2.0, 2.0, "uni-stc") < eed(2.0, 2.0, "ds-stc")

    def test_uses_configured_dpgs(self):
        big = eed(2.0, 2.0, "uni-stc", UniSTCConfig(num_dpgs=16))
        small = eed(2.0, 2.0, "uni-stc", UniSTCConfig(num_dpgs=4, tile_queue_depth=8))
        assert big < small

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            eed(0.0, 1.0, "uni-stc")

    def test_stc_area_lookup(self):
        assert stc_area_mm2("ds-stc") == DS_STC_AREA_MM2
        assert stc_area_mm2("rm-stc") == RM_STC_AREA_MM2
        assert stc_area_mm2("uni-stc") == pytest.approx(total_area_mm2())
        with pytest.raises(ConfigError):
            stc_area_mm2("gamma")

    def test_rm_decoder_premise(self):
        """RM-STC spends area on a format decoder BBC removes (§IV-D):
        its dedicated area must exceed DS-STC's."""
        assert RM_STC_AREA_MM2 > DS_STC_AREA_MM2

"""Tests for the assembled Uni-STC simulator."""

import numpy as np
import pytest

from repro.arch.config import FP32, UniSTCConfig
from repro.arch.tasks import T1Task
from repro.arch.unistc import UniSTC, decode_a_operand, decode_b_operand
from repro.errors import SimulationError

from tests.conftest import make_block_task


class TestDecode:
    def test_a_decode_dense(self):
        tiles, cols = decode_a_operand(np.ones((16, 16), dtype=bool))
        assert (tiles == 0xFFFF).all()
        assert (cols == 4).all()

    def test_a_decode_positions(self):
        a = np.zeros((16, 16), dtype=bool)
        a[5, 9] = True  # tile (1, 2), element (1, 1)
        tiles, cols = decode_a_operand(a)
        assert tiles[1, 2] == 1 << (1 * 4 + 1)
        assert cols[1, 2, 1] == 1

    def test_b_decode_matrix(self):
        tiles, rows, n_cols = decode_b_operand(np.ones((16, 16), dtype=bool))
        assert n_cols == 4
        assert (rows == 4).all()

    def test_b_decode_vector(self):
        b = np.zeros((16, 1), dtype=bool)
        b[6, 0] = True  # segment 1, offset 2
        tiles, rows, n_cols = decode_b_operand(b)
        assert n_cols == 1
        assert tiles.shape == (4, 1)
        assert tiles[1, 0] == 1 << 2
        assert rows[1, 0, 2] == 1

    def test_b_decode_rejects_other_shapes(self):
        with pytest.raises(SimulationError):
            decode_b_operand(np.ones((16, 4), dtype=bool))


class TestDenseBehaviour:
    def test_dense_block_cycles_and_util(self, uni):
        result = uni.simulate_block(
            T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))
        )
        assert result.cycles == 64
        assert result.products == 4096
        assert result.util_hist.fractions()[3] == 1.0

    def test_dense_fp32_halves_cycles(self):
        uni32 = UniSTC(UniSTCConfig(precision=FP32))
        result = uni32.simulate_block(
            T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))
        )
        assert result.cycles == 32

    def test_dense_spmv_block(self, uni):
        result = uni.simulate_block(
            T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 1), bool))
        )
        assert result.products == 256
        assert result.cycles == 4


class TestEmptyAndEdge:
    def test_empty_block_single_cycle(self, uni):
        result = uni.simulate_block(
            T1Task.from_bitmaps(np.zeros((16, 16), bool), np.ones((16, 16), bool))
        )
        assert result.cycles == 1
        assert result.products == 0
        assert result.counters.get("mac_ops") == 0

    def test_disjoint_structure_single_cycle(self, uni):
        """A and B nonzero but never index-matching: no products."""
        a = np.zeros((16, 16), bool)
        b = np.zeros((16, 16), bool)
        a[:, 0] = True
        b[1, :] = True
        result = uni.simulate_block(T1Task.from_bitmaps(a, b))
        assert result.products == 0
        assert result.cycles == 1

    def test_single_product(self, uni):
        a = np.zeros((16, 16), bool)
        b = np.zeros((16, 16), bool)
        a[0, 0] = True
        b[0, 0] = True
        result = uni.simulate_block(T1Task.from_bitmaps(a, b))
        assert result.products == 1
        assert result.cycles == 1
        assert result.counters.get("c_elem_writes") == 1


class TestInvariants:
    @pytest.mark.parametrize("seed", range(8))
    def test_products_conserved(self, uni, seed):
        task = make_block_task(0.3, 0.3, seed)
        result = uni.simulate_block(task)
        assert result.products == task.intermediate_products()

    @pytest.mark.parametrize("seed", range(8))
    def test_cycles_at_least_ideal(self, uni, seed):
        task = make_block_task(0.4, 0.4, seed)
        result = uni.simulate_block(task)
        assert result.cycles >= -(-task.intermediate_products() // 64)

    @pytest.mark.parametrize("seed", range(8))
    def test_histogram_covers_all_cycles(self, uni, seed):
        task = make_block_task(0.2, 0.5, seed)
        result = uni.simulate_block(task)
        assert result.util_hist.cycles == result.cycles

    @pytest.mark.parametrize("seed", range(8))
    def test_c_writes_are_distinct_outputs(self, uni, seed):
        """C crosses the output network once per distinct output element
        (the accumulator buffer absorbs T4 partial writes, §IV-C)."""
        task = make_block_task(0.3, 0.3, seed)
        result = uni.simulate_block(task)
        writes = result.counters.get("c_elem_writes")
        expected = int(np.count_nonzero(
            task.a_bitmap().astype(int) @ task.b_bitmap().astype(int)
        ))
        assert writes == expected
        assert writes <= result.products
        # Accumulator RMWs record the pre-merged T4 writes instead.
        accum = result.counters.get("accum_accesses")
        assert accum >= result.products / 4

    @pytest.mark.parametrize("seed", range(4))
    def test_dpg_cycles_partition(self, uni, seed):
        """Active + gated DPG-cycles = num_dpgs x cycles (gating on)."""
        task = make_block_task(0.3, 0.3, seed)
        result = uni.simulate_block(task)
        total = (result.counters.get("dpg_active_cycles")
                 + result.counters.get("dpg_gated_cycles"))
        assert total == uni.config.num_dpgs * result.cycles

    def test_gating_disabled_keeps_all_active(self):
        uni = UniSTC(UniSTCConfig(dynamic_gating=False))
        task = make_block_task(0.2, 0.2, 1)
        result = uni.simulate_block(task)
        assert result.counters.get("dpg_gated_cycles") == 0
        assert result.counters.get("dpg_active_cycles") == uni.config.num_dpgs * result.cycles

    def test_vector_task_invariants(self, uni):
        task = make_block_task(0.4, 0.6, 3, n=1)
        result = uni.simulate_block(task)
        assert result.products == task.intermediate_products()
        assert result.cycles >= 1


class TestConfigurations:
    def test_more_dpgs_never_slower(self):
        """Monotonicity: DPG count can only help cycle counts."""
        uni4 = UniSTC(UniSTCConfig(num_dpgs=4, tile_queue_depth=8))
        uni16 = UniSTC(UniSTCConfig(num_dpgs=16))
        for seed in range(6):
            task = make_block_task(0.25, 0.25, seed)
            assert uni16.simulate_block(task).cycles <= uni4.simulate_block(task).cycles

    def test_cache_keys_distinguish_configs(self):
        assert UniSTC().cache_key() != UniSTC(UniSTCConfig(num_dpgs=4, tile_queue_depth=8)).cache_key()
        assert UniSTC().cache_key() != UniSTC(ordering="dot").cache_key()
        assert UniSTC().cache_key() != UniSTC(fill_order="n").cache_key()

    def test_name_includes_nonstandard_dpgs(self):
        assert UniSTC().name == "uni-stc"
        assert "4dpg" in UniSTC(UniSTCConfig(num_dpgs=4, tile_queue_depth=8)).name

    def test_n_fill_same_cycles(self):
        """Fill order affects operand locality, not cycle counts."""
        z, n = UniSTC(fill_order="z"), UniSTC(fill_order="n")
        for seed in range(4):
            task = make_block_task(0.3, 0.3, seed)
            assert z.simulate_block(task).cycles == n.simulate_block(task).cycles

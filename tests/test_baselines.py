"""Shared invariants plus per-architecture behaviour of every baseline."""

import numpy as np
import pytest

from repro.arch.config import FP32, FP64
from repro.arch.tasks import T1Task
from repro.baselines import DsSTC, Gamma, NvDTC, RmSTC, Sigma, Trapezoid

from tests.conftest import make_block_task

DENSE = T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 16), bool))
DENSE_VEC = T1Task.from_bitmaps(np.ones((16, 16), bool), np.ones((16, 1), bool))
EMPTY = T1Task.from_bitmaps(np.zeros((16, 16), bool), np.zeros((16, 16), bool))


class TestSharedInvariants:
    """Parametrised over every architecture via the any_stc fixture."""

    def test_dense_block_full_throughput(self, any_stc):
        result = any_stc.simulate_block(DENSE)
        assert result.cycles == 4096 // any_stc.macs
        assert result.products == 4096
        assert result.util_hist.fractions()[3] == 1.0

    def test_empty_block_one_cycle(self, any_stc):
        result = any_stc.simulate_block(EMPTY)
        assert result.cycles == 1
        assert result.products == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_products_conserved(self, any_stc, seed):
        task = make_block_task(0.3, 0.3, seed)
        result = any_stc.simulate_block(task)
        assert result.products == task.intermediate_products()

    @pytest.mark.parametrize("seed", range(5))
    def test_cycles_at_least_ideal(self, any_stc, seed):
        task = make_block_task(0.4, 0.4, seed)
        result = any_stc.simulate_block(task)
        assert result.cycles >= -(-task.intermediate_products() // any_stc.macs)

    @pytest.mark.parametrize("seed", range(5))
    def test_histogram_covers_cycles(self, any_stc, seed):
        task = make_block_task(0.25, 0.4, seed)
        result = any_stc.simulate_block(task)
        assert result.util_hist.cycles == result.cycles

    @pytest.mark.parametrize("seed", range(3))
    def test_lane_cycles_recorded(self, any_stc, seed):
        task = make_block_task(0.3, 0.3, seed)
        result = any_stc.simulate_block(task)
        assert result.counters.get("lane_cycles") == any_stc.macs * result.cycles

    @pytest.mark.parametrize("seed", range(3))
    def test_vector_task_supported(self, any_stc, seed):
        task = make_block_task(0.4, 0.7, seed, n=1)
        result = any_stc.simulate_block(task)
        assert result.products == task.intermediate_products()
        assert result.cycles >= 1

    def test_deterministic(self, any_stc):
        task = make_block_task(0.3, 0.3, 42)
        r1 = any_stc.simulate_block(task)
        r2 = any_stc.simulate_block(task)
        assert r1.cycles == r2.cycles
        assert r1.counters == r2.counters


class TestStructuralCaps:
    """The paper's published per-dataflow utilisation ceilings (§VI-C)."""

    def test_ds_stc_spmv_cap_12_5_percent(self):
        """K=1 outer product with a vector: at most 8 of 64 lanes busy."""
        ds = DsSTC()
        for seed in range(6):
            task = make_block_task(0.8, 1.0, seed, n=1)
            result = ds.simulate_block(task)
            assert result.products / (result.cycles * 64) <= 0.125 + 1e-9

    def test_rm_stc_spmv_cap_25_percent(self):
        """8 lanes x 2 scalars x 1 column: at most 16 of 64 lanes busy."""
        rm = RmSTC()
        for seed in range(6):
            task = make_block_task(0.8, 1.0, seed, n=1)
            result = rm.simulate_block(task)
            assert result.products / (result.cycles * 64) <= 0.25 + 1e-9

    def test_uni_stc_beats_both_caps_on_dense_vector(self, uni):
        result = uni.simulate_block(DENSE_VEC)
        assert result.products / (result.cycles * 64) > 0.25

    def test_ds_dense_spmv_32_cycles(self):
        assert DsSTC().simulate_block(DENSE_VEC).cycles == 32

    def test_rm_dense_spmv_16_cycles(self):
        assert RmSTC().simulate_block(DENSE_VEC).cycles == 16


class TestDsSTC:
    def test_dead_k_layers_skipped(self):
        a = np.zeros((16, 16), bool)
        b = np.zeros((16, 16), bool)
        a[:, 3] = True
        b[3, :] = True
        result = DsSTC().simulate_block(T1Task.from_bitmaps(a, b))
        # One live K layer: 2 chunks x 2 chunks = 4 cycles.
        assert result.cycles == 4
        assert result.products == 256

    def test_k_layers_never_share_cycles(self):
        """Fig. 6: DS-STC cannot concatenate along K."""
        a = np.zeros((16, 16), bool)
        b = np.zeros((16, 16), bool)
        a[0, :] = True   # one nonzero per K layer
        b[:, 0] = True
        result = DsSTC().simulate_block(T1Task.from_bitmaps(a, b))
        assert result.cycles == 16  # 16 rank-1 updates, one each

    def test_outer_product_writes_all_partials(self):
        task = make_block_task(0.3, 0.3, 7)
        result = DsSTC().simulate_block(task)
        assert result.counters.get("c_elem_writes") == result.products

    def test_fp32_widens_b_chunk(self):
        ds = DsSTC(FP32)
        result = ds.simulate_block(DENSE)
        assert result.cycles == 32


class TestRmSTC:
    def test_merge_factor_at_most_two(self):
        task = make_block_task(0.4, 0.4, 3)
        result = RmSTC().simulate_block(task)
        writes = result.counters.get("c_elem_writes")
        assert result.products / 2 <= writes <= result.products

    def test_row_gathering_beats_ds_on_sparse_a(self):
        """Row-merge gathers scalar pairs; DS pays one cycle per K."""
        ds, rm = DsSTC(), RmSTC()
        slower = faster = 0
        for seed in range(8):
            task = make_block_task(0.15, 0.5, seed)
            if rm.simulate_block(task).cycles <= ds.simulate_block(task).cycles:
                faster += 1
            else:
                slower += 1
        assert faster > slower

    def test_b_fetched_once_per_block(self):
        """Shared row-merge buffer: B traffic bounded by nnz(B) x live K."""
        task = make_block_task(0.5, 0.5, 11)
        result = RmSTC().simulate_block(task)
        b_nnz = int(task.b_bitmap().sum())
        assert result.counters.get("b_elem_reads") <= b_nnz


class TestNvDTC:
    def test_no_sparsity_adaptation_within_t2(self):
        """A single nonzero pays the full T2 region's T3 grid."""
        a = np.zeros((16, 16), bool)
        b = np.zeros((16, 16), bool)
        a[0, 0] = True
        b[0, 0] = True
        result = NvDTC().simulate_block(T1Task.from_bitmaps(a, b))
        assert result.cycles == 4  # one live 8x8x4 T2 -> 4 dense T3 tasks
        assert result.products == 1

    def test_t2_skipping(self):
        """Fully dead T2 regions are skipped by the front-end."""
        a = np.zeros((16, 16), bool)
        b = np.ones((16, 16), bool)
        a[0:8, 0:4] = True  # only T2 (0, *, 0) regions live
        result = NvDTC().simulate_block(T1Task.from_bitmaps(a, b))
        dense_cycles = NvDTC().simulate_block(DENSE).cycles
        assert result.cycles < dense_cycles

    def test_dense_reads_include_zeros(self):
        task = make_block_task(0.1, 0.1, 5)
        result = NvDTC().simulate_block(task)
        nnz_a = int(task.a_bitmap().sum())
        assert result.counters.get("a_elem_reads") >= nnz_a


class TestGammaSigmaTrapezoid:
    def test_gamma_occupies_full_row_window(self):
        """GAMMA cannot bypass empty rows: one nonzero still costs a cycle."""
        a = np.zeros((16, 16), bool)
        b = np.ones((16, 16), bool)
        a[0, 0] = True
        result = Gamma().simulate_block(T1Task.from_bitmaps(a, b))
        assert result.cycles == 4  # 16 B columns / 4-wide chunks
        assert result.util_hist.fractions()[0] == 1.0  # all low-util

    def test_sigma_single_sided(self):
        """SIGMA reads B densely within a live column group."""
        task = make_block_task(0.5, 0.2, 9)
        result = Sigma().simulate_block(task)
        assert result.counters.get("b_elem_reads") >= result.products / 4

    def test_trapezoid_row_imbalance(self):
        """One heavy row dominates completion (max-over-lanes rule)."""
        a = np.zeros((16, 16), bool)
        b = np.ones((16, 16), bool)
        a[0, :] = True   # one dense row
        heavy = Trapezoid().simulate_block(T1Task.from_bitmaps(a, b))
        a2 = np.zeros((16, 16), bool)
        for i in range(16):
            a2[i, i] = True  # same nnz spread over all rows
        balanced = Trapezoid().simulate_block(T1Task.from_bitmaps(a2, b))
        assert heavy.cycles > balanced.cycles

    def test_trapezoid_strong_on_vector(self):
        """TrIP dot-product acceleration: dense SpMV in 8 cycles."""
        assert Trapezoid().simulate_block(DENSE_VEC).cycles == 8

    def test_cache_keys_distinct(self):
        names = {m().cache_key() for m in (DsSTC, Gamma, NvDTC, RmSTC, Sigma, Trapezoid)}
        assert len(names) == 6

    def test_fp32_cache_keys_distinct(self):
        assert DsSTC(FP64).cache_key() != DsSTC(FP32).cache_key()

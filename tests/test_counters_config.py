"""Tests for the action counters and architecture configuration."""

import pytest

from repro.arch.config import FP16, FP32, FP64, PRECISIONS, UniSTCConfig
from repro.arch.counters import ACTIONS, Counters
from repro.errors import ConfigError


class TestCounters:
    def test_starts_empty(self):
        c = Counters()
        assert c.as_dict() == {}
        assert c.get("mac_ops") == 0.0

    def test_add_and_get(self):
        c = Counters()
        c.add("mac_ops", 10)
        c.add("mac_ops", 5)
        assert c.get("mac_ops") == 15

    def test_zero_add_not_stored(self):
        c = Counters()
        c.add("mac_ops", 0)
        assert c.as_dict() == {}

    def test_unknown_action_rejected(self):
        c = Counters()
        with pytest.raises(KeyError):
            c.add("flux_capacitor", 1)
        with pytest.raises(KeyError):
            c.get("flux_capacitor")

    def test_initial_mapping(self):
        c = Counters({"mac_ops": 3, "queue_ops": 2})
        assert c.get("mac_ops") == 3
        assert c.get("queue_ops") == 2

    def test_merge_weighted(self):
        a = Counters({"mac_ops": 2})
        b = Counters({"mac_ops": 3, "meta_reads": 1})
        a.merge(b, weight=2)
        assert a.get("mac_ops") == 8
        assert a.get("meta_reads") == 2

    def test_scaled_returns_new(self):
        a = Counters({"mac_ops": 4})
        b = a.scaled(0.5)
        assert b.get("mac_ops") == 2
        assert a.get("mac_ops") == 4

    def test_equality(self):
        assert Counters({"mac_ops": 1}) == Counters({"mac_ops": 1})
        assert Counters({"mac_ops": 1}) != Counters({"mac_ops": 2})

    def test_actions_vocabulary_stable(self):
        # The energy model prices exactly these actions.
        assert "mac_ops" in ACTIONS
        assert "dpg_active_cycles" in ACTIONS
        assert len(ACTIONS) == len(set(ACTIONS))


class TestPrecision:
    def test_mac_budgets(self):
        """The paper's scaling: 64@FP64, 128@FP32, 256@FP16 (§IV-A)."""
        assert FP64.macs == 64
        assert FP32.macs == 128
        assert FP16.macs == 256

    def test_value_bytes(self):
        assert FP64.value_bytes == 8
        assert FP32.value_bytes == 4
        assert FP16.value_bytes == 2

    def test_registry(self):
        assert PRECISIONS["fp64"] is FP64


class TestUniSTCConfig:
    def test_defaults_match_paper(self):
        cfg = UniSTCConfig()
        assert cfg.num_dpgs == 8
        assert cfg.tile == 4
        assert cfg.block == 16
        assert cfg.frequency_ghz == 1.5
        assert cfg.meta_buffer_bytes == 144
        assert cfg.matrix_a_buffer_bytes == 2048
        assert cfg.accumulator_buffer_bytes == 1024

    def test_derived_quantities(self):
        cfg = UniSTCConfig()
        assert cfg.macs == 64
        assert cfg.tiles_per_side == 4
        assert cfg.max_products_per_t3 == 64

    def test_with_dpgs(self):
        cfg = UniSTCConfig().with_dpgs(16)
        assert cfg.num_dpgs == 16
        assert UniSTCConfig().num_dpgs == 8  # original untouched

    def test_with_precision(self):
        cfg = UniSTCConfig().with_precision(FP32)
        assert cfg.macs == 128

    def test_rejects_zero_dpgs(self):
        with pytest.raises(ConfigError):
            UniSTCConfig(num_dpgs=0)

    def test_rejects_indivisible_tile(self):
        with pytest.raises(ConfigError):
            UniSTCConfig(tile=5)

    def test_rejects_shallow_tile_queue(self):
        with pytest.raises(ConfigError):
            UniSTCConfig(num_dpgs=8, tile_queue_depth=4)


class TestUniSTCConfigDSEValidation:
    """Every knob a design-space sweep can set must reject bad values."""

    def test_rejects_negative_dpgs(self):
        with pytest.raises(ConfigError):
            UniSTCConfig(num_dpgs=-4)

    def test_rejects_non_positive_tile(self):
        for tile in (0, -2):
            with pytest.raises(ConfigError):
                UniSTCConfig(tile=tile)

    def test_rejects_non_positive_block(self):
        with pytest.raises(ConfigError):
            UniSTCConfig(block=0)

    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ConfigError):
            UniSTCConfig(frequency_ghz=0.0)

    def test_rejects_non_positive_queue_depths(self):
        with pytest.raises(ConfigError):
            UniSTCConfig(dot_queue_depth=0)
        with pytest.raises(ConfigError):
            UniSTCConfig(num_dpgs=1, tile_queue_depth=0)

    def test_rejects_negative_wakeup_and_lookahead(self):
        with pytest.raises(ConfigError):
            UniSTCConfig(dpg_wakeup_cycles=-1)
        with pytest.raises(ConfigError):
            UniSTCConfig(lookahead_cycles=-1)

    def test_rejects_negative_buffer_bytes(self):
        with pytest.raises(ConfigError):
            UniSTCConfig(meta_buffer_bytes=-1)
        with pytest.raises(ConfigError):
            UniSTCConfig(matrix_a_buffer_bytes=-1)
        with pytest.raises(ConfigError):
            UniSTCConfig(accumulator_buffer_bytes=-1)

    def test_rejects_precision_by_bare_name(self):
        """A CLI/space string must go through parse_precision first."""
        with pytest.raises(ConfigError):
            UniSTCConfig(precision="fp64")


class TestParsePrecision:
    def test_known_names(self):
        from repro.arch.config import parse_precision

        assert parse_precision("fp64") is PRECISIONS["fp64"]
        assert parse_precision("FP32").macs == 128
        assert parse_precision(" fp16 ").bits == 16

    def test_unknown_name_rejected(self):
        from repro.arch.config import parse_precision

        with pytest.raises(ConfigError):
            parse_precision("bf16")
        with pytest.raises(ConfigError):
            parse_precision("")

"""Tests for queue modelling, matrix statistics and the sweep runner."""

import pytest

from repro.arch.config import UniSTCConfig
from repro.arch.queues import (
    HardwareQueue,
    generation_hides_latency,
    replay_queues,
)
from repro.arch.tms import TileMultiplyScheduler
from repro.arch.unistc import UniSTC, decode_a_operand, decode_b_operand
from repro.arch.tms import tile_products
from repro.baselines import DsSTC
from repro.errors import SimulationError
from repro.sim.sweep import Sweep, SweepCase, geomean_speedups, rows_from_results
from repro.workloads.stats import compute_stats, coverage_summary, describe_corpus
from repro.workloads.synthetic import banded, long_rows, power_law, random_uniform

from tests.conftest import make_block_task


class TestHardwareQueue:
    def test_fifo_order(self):
        q = HardwareQueue(4)
        for i in range(3):
            assert q.push(i)
        assert [q.pop(), q.pop(), q.pop()] == [0, 1, 2]

    def test_bounded(self):
        q = HardwareQueue(2)
        assert q.push(1) and q.push(2)
        assert not q.push(3)
        assert q.rejected_pushes == 1

    def test_pop_empty(self):
        assert HardwareQueue(2).pop() is None

    def test_stats(self):
        q = HardwareQueue(8, "tile")
        for i in range(5):
            q.push(i)
        q.pop()
        assert q.max_occupancy == 5
        assert q.total_pushes == 5
        assert q.total_pops == 1
        assert q.occupancy == 4

    def test_rejects_bad_depth(self):
        with pytest.raises(SimulationError):
            HardwareQueue(0)


class TestQueueReplay:
    def _schedule_counts(self, seed):
        task = make_block_task(0.3, 0.3, seed)
        _, a_cols = decode_a_operand(task.a_bitmap())
        _, b_rows, _ = decode_b_operand(task.b_bitmap())
        tms = TileMultiplyScheduler(UniSTCConfig())
        outcome = tms.schedule(tile_products(a_cols, b_rows))
        return [c.tasks for c in outcome.cycles]

    def test_default_rates_hide_latency(self):
        """§IV-G: generation outpaces consumption, READY rises cycle 0."""
        for seed in range(5):
            counts = self._schedule_counts(seed)
            trace = replay_queues(counts, t4_per_t3=2.0)
            assert generation_hides_latency(trace)

    def test_slow_generation_underflows(self):
        counts = [8] * 6
        trace = replay_queues(counts, t4_per_t3=2.0, generation_rate=2)
        assert trace.underflow_cycles > 0

    def test_occupancy_traced_per_cycle(self):
        counts = self._schedule_counts(1)
        trace = replay_queues(counts, t4_per_t3=2.0)
        assert trace.total_cycles == len(counts)
        assert all(o <= UniSTCConfig().tile_queue_depth for o in trace.tile_occupancy)

    def test_rejects_bad_rate(self):
        with pytest.raises(SimulationError):
            replay_queues([1], t4_per_t3=1.0, generation_rate=0)


class TestMatrixStats:
    def test_banded_profile(self):
        m = banded(128, 6, 1.0, seed=0)
        stats = compute_stats(m)
        assert stats.bandwidth <= 6
        assert stats.symmetry > 0.9
        assert stats.family_guess() == "banded"

    def test_powerlaw_profile(self):
        m = power_law(256, avg_row_nnz=6.0, seed=1)
        stats = compute_stats(m, measure_products=False)
        assert stats.row_imbalance > 1.0

    def test_arrow_has_heavy_rows(self):
        m = long_rows(128, heavy_rows=2, heavy_density=0.9,
                      background_density=0.01, seed=2)
        stats = compute_stats(m, measure_products=False)
        assert stats.max_row_nnz > 10 * stats.avg_row_nnz

    def test_density_axis_measured(self):
        m = random_uniform(64, 64, 0.3, seed=3)
        stats = compute_stats(m)
        assert stats.inter_products_per_task > 0

    def test_empty_matrix(self):
        from repro.formats.coo import COOMatrix

        stats = compute_stats(COOMatrix((8, 8), [], [], []))
        assert stats.nnz == 0
        assert stats.bandwidth == 0

    def test_describe_and_coverage(self):
        corpus = [
            ("band", banded(64, 4, 1.0, seed=0)),
            ("rand", random_uniform(64, 64, 0.02, seed=1)),
        ]
        profiles = describe_corpus(corpus)
        assert len(profiles) == 2
        summary = coverage_summary([s for _, s in profiles])
        lo, hi = summary["density"]
        assert lo < hi

    def test_corpus_spans_axes(self):
        """The DESIGN.md diversity claim, measured."""
        from repro.workloads.suitesparse import iter_matrices, small_corpus

        profiles = [compute_stats(m, measure_products=False)
                    for _, m in iter_matrices(small_corpus(limit=10))]
        summary = coverage_summary(profiles)
        assert summary["density"][1] / max(summary["density"][0], 1e-12) > 10
        assert summary["row_imbalance"][1] > 1.0


class TestSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return Sweep(
            matrices={
                "band": banded(64, 8, 0.5, seed=0),
                "rand": random_uniform(64, 64, 0.1, seed=1),
            },
            stcs={"ds-stc": DsSTC, "uni-stc": UniSTC},
            kernels=("spmv", "spmspv"),
        )

    def test_case_grid(self, sweep):
        cases = sweep.cases()
        assert len(cases) == 2 * 2 * 2
        assert SweepCase("band", "uni-stc", "spmv") in cases

    def test_run_produces_all_cells(self, sweep):
        results = sweep.run()
        assert len(results) == 8
        assert all(r.report.cycles >= 1 for r in results)

    def test_progress_callback(self, sweep):
        seen = []
        sweep.run(progress=seen.append)
        assert len(seen) == 8

    def test_rows(self, sweep):
        from repro.sim.sweep import ROW_COLUMNS

        rows = rows_from_results(sweep.run())
        assert len(rows) == 8
        assert all(len(r) == len(ROW_COLUMNS) for r in rows)

    def test_geomean_speedups(self, sweep):
        results = sweep.run()
        speedups = geomean_speedups(results, "uni-stc", "ds-stc")
        assert set(speedups) == {"spmv", "spmspv"}
        assert all(v > 0.5 for v in speedups.values())

    def test_missing_baseline_rejected(self, sweep):
        results = [r for r in sweep.run() if r.case.stc_name == "uni-stc"]
        with pytest.raises(SimulationError):
            geomean_speedups(results, "uni-stc", "ds-stc")
